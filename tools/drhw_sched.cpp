// drhw_sched — command-line driver for the hybrid prefetch scheduling flow.
//
// drhw-lint: allow-file(wall-clock: campaign wall-time report is host-side)
//
// Usage:
//   drhw_sched demo                         write a sample task graph JSON
//   drhw_sched info <graph.json>            graph statistics + CS set
//   drhw_sched schedule <graph.json> [opts] run the flow, print Gantt charts
//   drhw_sched dot <graph.json>             Graphviz export
//   drhw_sched campaign [opts]              run a scenario campaign
//   drhw_sched online [opts]                online (event-driven) simulation
//   drhw_sched genwork [opts]               generate fuzzed .dwl workloads
//   drhw_sched trace info|verify|render F   inspect / replay-verify / render
//                                           a recorded trace
//   drhw_sched list-policies                print the registered prefetch
//                                           policies (also available as a
//                                           --list-policies flag on the
//                                           campaign and online subcommands)
//
// Options for `schedule`:
//   --tiles N          DRHW tiles (default 8)
//   --latency-us L     reconfiguration latency in us (default 4000)
//   --ports N          reconfiguration ports (default 1)
//   --resident a,b,c   subtask ids already resident (reuse)
//
// Options for `campaign`:
//   --list             print the matching scenarios and exit
//   --dry-run          enumerate + validate the campaign, don't simulate
//   --filter STR       keep scenarios whose name or family contains STR
//   --threads N        worker threads (default: hardware concurrency)
//   --iterations N     override the per-scenario iteration count
//   --seed S           base RNG seed for the built-in registry
//   --workload FILE    replace the built-in registry with one scenario
//                      family per .dwl workload file (family "file/<stem>",
//                      online mode, one scenario per registered policy;
//                      repeatable)
//   --workload-dir DIR same, over every .dwl file in DIR (sorted by name)
//   --queue B          calendar | heap event-queue backend for the file
//                      scenarios (default calendar)
//   --json FILE        write the full JSON report
//   --csv FILE         write the per-scenario CSV report
//   --quiet            suppress per-scenario progress lines
//
// Options for `online` (one row per approach, shared arrival stream):
//   --workload W       multimedia | pocket_gl | a .dwl workload file
//                      (default multimedia; a file's arrivals block is
//                      applied unless arrival flags are given)
//   --trace FILE       record a structured event trace (drhw-trace-v1) of
//                      the run; needs exactly one --approach
//   --trace-format F   jsonl | binary trace encoding (default jsonl)
//   --tiles N          DRHW tiles (default 16)
//   --latency-us L     reconfiguration latency in us (default 4000)
//   --ports N          reconfiguration ports (default 1)
//   --arrivals K       poisson | bursty | closed_loop | periodic | sporadic
//                      (default poisson; unknown kinds list the registered
//                      ones and exit 2)
//   --rate R           arrivals (or bursts) per second (default 20)
//   --burst N          instances per burst (bursty; default 4)
//   --think-us T       closed-loop think time in us (default 1000)
//   --period-us P      periodic/sporadic inter-arrival base in us
//                      (default: derived from --rate)
//   --deadline-scale X real-time mode: stamp every instance with deadline
//                      arrival + X x ideal makespan (0 = deadlines off);
//                      adds a per-policy deadline summary after the table
//   --crit-fraction F  fraction of instances drawn high-criticality
//                      (default 0.25; with --deadline-scale)
//   --preempt          checkpoint low-criticality live instances to admit
//                      blocked high-criticality arrivals (needs
//                      --deadline-scale)
//   --discipline D     fifo | priority port arbitration (default fifo)
//   --isp N            model the ISPs as a shared contended pool of N
//                      servers (default: per-instance ISPs)
//   --isp-discipline D fifo | priority arbitration between waiting ISP
//                      executions (with --isp; default fifo)
//   --replacement R    lru | weight | critical-first | random | oracle
//   --lookahead N      backlog-prefetch depth in queued instances (default 1)
//   --admission P      fifo_hol | backfill_bypass | window_reorder
//   --contiguous       require contiguous free tile runs for admission
//   --defrag           online defragmentation (implies --contiguous)
//   --window N         reorder window for window_reorder (default 4)
//   --max-bypass N     overtakes the queue head tolerates (default 8)
//   --sched-cost-us C  per-admission scheduler cost on the timeline;
//                      "paper" picks the Section 4 value per approach
//   --iterations N     sampler batches to draw (default 500)
//   --seed S           RNG seed (default 2005)
//   --queue B          calendar | heap event-queue backend (default
//                      calendar; both pop in the same order, reports are
//                      bit-identical)
//   --perf             print the kernel perf-counter summary per approach
//                      (event counts, queue depth histogram, allocation
//                      counts, phase timings) after the table
//   --approach P       restrict to one policy, by registered name with
//                      optional parameters, e.g. hybrid[intertask=0]
//                      (default: every registered policy)
//
// Options for `genwork` (seeded workload fuzzer):
//   --out DIR          output directory (created; default ".")
//   --count N          number of workload files (default 10)
//   --seed S           base seed; file i uses seed S + i (default 1)
//   --tasks N          tasks per workload (default 4)
//   --variants N       scenario variants per task (default 2)
//   --configs N        shared configuration space (default 16)
//   --min-nodes N      minimum DAG nodes per task (default 3)
//   --max-nodes N      maximum DAG nodes per task (default 10)
//
// Options for `trace render`:
//   --format F         ascii | svg (default ascii)
//   --out FILE         write the rendering to FILE instead of stdout
//   --width N          timeline width in characters / pixels
//   --from-us T        window start in simulated us (default 0)
//   --until-us T       window end in simulated us (default: the horizon)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/dot.hpp"
#include "graph/serialization.hpp"
#include "platform/platform.hpp"
#include "policy/registry.hpp"
#include "prefetch/bnb.hpp"
#include "prefetch/critical_subtasks.hpp"
#include "prefetch/hybrid.hpp"
#include "runner/campaign.hpp"
#include "runner/report.hpp"
#include "runner/scenario.hpp"
#include "schedule/list_scheduler.hpp"
#include "sim/event_sim.hpp"
#include "sim/gantt.hpp"
#include "sim/workloads.hpp"
#include "trace/trace.hpp"
#include "util/table.hpp"
#include "wio/fuzz.hpp"
#include "wio/workload_build.hpp"
#include "wio/workload_format.hpp"

namespace {

using namespace drhw;

int usage() {
  std::cerr << "usage: drhw_sched demo\n"
               "       drhw_sched info <graph.json>\n"
               "       drhw_sched schedule <graph.json> [--tiles N]"
               " [--latency-us L] [--ports N] [--resident a,b,c]\n"
               "       drhw_sched dot <graph.json>\n"
               "       drhw_sched list-policies\n"
               "       drhw_sched campaign [--list] [--list-policies]"
               " [--dry-run]"
               " [--filter STR] [--threads N] [--iterations N] [--seed S]"
               " [--workload FILE] [--workload-dir DIR] [--queue B]"
               " [--json FILE] [--csv FILE] [--quiet]\n"
               "       drhw_sched online [--workload W|FILE.dwl] [--tiles N]"
               " [--latency-us L] [--ports N] [--arrivals K] [--rate R]"
               " [--burst N] [--think-us T] [--discipline D]"
               " [--isp N] [--isp-discipline D] [--period-us P]"
               " [--deadline-scale X] [--crit-fraction F] [--preempt]"
               " [--replacement R] [--lookahead N] [--admission P]"
               " [--contiguous] [--defrag] [--window N] [--max-bypass N]"
               " [--sched-cost-us C]"
               " [--iterations N] [--seed S] [--queue B] [--perf]"
               " [--trace FILE] [--trace-format F]"
               " [--approach P] [--list-policies]\n"
               "       drhw_sched genwork [--out DIR] [--count N] [--seed S]"
               " [--tasks N] [--variants N] [--configs N]"
               " [--min-nodes N] [--max-nodes N]\n"
               "       drhw_sched trace info <trace>\n"
               "       drhw_sched trace verify <trace>\n"
               "       drhw_sched trace render <trace> [--format ascii|svg]"
               " [--out FILE] [--width N] [--from-us T] [--until-us T]\n";
  return 2;
}

/// Shared unknown-flag behaviour of the campaign/online/genwork/trace
/// subcommands: usage plus the registered policy and arrival-kind lists,
/// exit code 2.
int usage_unknown(const char* subcommand, const std::string& flag) {
  std::cerr << "error: unknown or incomplete option '" << flag
            << "' for 'drhw_sched " << subcommand << "'\n";
  usage();
  std::cerr << "registered policies:\n";
  for (const std::string& name : PolicyRegistry::instance().names())
    std::cerr << "  " << name << "\n";
  std::cerr << "registered arrival kinds:\n";
  for (const std::string& name : arrival_kind_names())
    std::cerr << "  " << name << "\n";
  return 2;
}

/// The registered prefetch policies, one per line (--list-policies).
int cmd_list_policies() {
  TablePrinter table({"policy", "description"});
  const PolicyRegistry& registry = PolicyRegistry::instance();
  for (const std::string& name : registry.names())
    table.add_row({name, registry.description(name)});
  table.print(std::cout);
  return 0;
}

/// Parses a --approach value into a PolicySpec. An unknown policy name
/// prints the registered names and exits nonzero (exit code 2) instead of
/// surfacing an exception trace.
PolicySpec parse_policy_arg(const std::string& text) {
  const PolicySpec spec = PolicySpec::parse(text);
  if (!PolicyRegistry::instance().contains(spec.name)) {
    std::cerr << "error: unknown policy '" << spec.name
              << "'\nregistered policies:\n";
    for (const std::string& name : PolicyRegistry::instance().names())
      std::cerr << "  " << name << "\n";
    std::cerr << "(see drhw_sched list-policies)\n";
    std::exit(2);
  }
  return spec;
}

/// Parses an --arrivals value. An unknown kind prints the registered
/// arrival kinds and exits 2, mirroring parse_policy_arg().
ArrivalProcess::Kind parse_arrivals_arg(const std::string& text) {
  try {
    return arrival_kind_from_string(text);
  } catch (const std::invalid_argument&) {
    std::cerr << "error: unknown arrival kind '" << text
              << "'\nregistered arrival kinds:\n";
    for (const std::string& name : arrival_kind_names())
      std::cerr << "  " << name << "\n";
    std::exit(2);
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

SubtaskGraph demo_graph() {
  SubtaskGraph g("demo_pipeline");
  const auto a = g.add_subtask({"capture", ms(6), Resource::drhw});
  const auto b = g.add_subtask({"filter", ms(12), Resource::drhw});
  const auto c = g.add_subtask({"feature", ms(9), Resource::drhw});
  const auto d = g.add_subtask({"classify", ms(7), Resource::drhw});
  const auto e = g.add_subtask({"report", ms(2), Resource::isp});
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  g.add_edge(d, e);
  g.finalize();
  return g;
}

int cmd_demo() {
  std::cout << graph_to_json(demo_graph());
  return 0;
}

int cmd_info(const std::string& path) {
  const auto graph = graph_from_json(read_file(path));
  const auto platform = virtex2_platform(8);
  const auto placement = list_schedule(graph, platform.tiles, 1);
  const auto design = compute_hybrid_schedule(graph, placement, platform);
  const auto weights = subtask_weights(graph);

  std::cout << "graph: " << graph.name() << "\n"
            << "subtasks: " << graph.size() << " (" << graph.drhw_count()
            << " on DRHW)\n"
            << "critical path: " << fmt_ms(critical_path_length(graph))
            << " ms\n"
            << "ideal makespan (8 tiles): " << fmt_ms(placement.ideal_makespan)
            << " ms\n";
  TablePrinter table({"id", "name", "exec", "resource", "weight",
                      "critical"});
  for (std::size_t s = 0; s < graph.size(); ++s) {
    const auto& node = graph.subtask(static_cast<SubtaskId>(s));
    const bool critical =
        std::find(design.critical.begin(), design.critical.end(),
                  static_cast<SubtaskId>(s)) != design.critical.end();
    table.add_row({std::to_string(s), node.name,
                   fmt_ms(node.exec_time) + " ms",
                   node.resource == Resource::drhw ? "drhw" : "isp",
                   fmt_ms(weights[s]) + " ms", critical ? "yes" : ""});
  }
  table.print(std::cout);
  return 0;
}

int cmd_schedule(const std::string& path, int tiles, time_us latency,
                 int ports, const std::vector<int>& resident_ids) {
  const auto graph = graph_from_json(read_file(path));
  PlatformConfig platform = virtex2_platform(tiles);
  platform.reconfig_latency = latency;
  platform.reconfig_ports = ports;
  platform.validate();

  const auto placement = list_schedule(graph, tiles, 1);
  std::cout << "ideal makespan: " << fmt_ms(placement.ideal_makespan)
            << " ms\n\n";

  const auto on_demand =
      evaluate(graph, placement, platform, on_demand_all(graph, placement));
  std::cout << "on-demand loading: " << fmt_ms(on_demand.makespan)
            << " ms\n"
            << render_gantt(graph, placement, on_demand) << "\n";

  std::vector<bool> needs(graph.size(), false);
  for (std::size_t s = 0; s < graph.size(); ++s)
    needs[s] = placement.on_drhw(static_cast<SubtaskId>(s));
  const auto optimal = optimal_prefetch(graph, placement, platform, needs);
  std::cout << "optimal prefetch: " << fmt_ms(optimal.eval.makespan)
            << " ms\n"
            << render_gantt(graph, placement, optimal.eval) << "\n";

  const auto design = compute_hybrid_schedule(graph, placement, platform);
  std::vector<bool> resident(graph.size(), false);
  for (int id : resident_ids) {
    if (id < 0 || static_cast<std::size_t>(id) >= graph.size())
      throw std::invalid_argument("--resident id out of range");
    resident[static_cast<std::size_t>(id)] = true;
  }
  const auto run =
      hybrid_runtime(graph, placement, platform, design, resident);
  std::cout << "hybrid (|CS| = " << design.critical.size() << ", "
            << run.init_loads.size() << " init loads, "
            << run.cancelled_loads << " cancelled): "
            << fmt_ms(run.total_makespan) << " ms\n";
  GanttOptions options;
  options.init_duration = run.init_duration;
  options.init_loads = run.init_loads;
  std::cout << render_gantt(graph, placement, run.eval, options);
  return 0;
}

int cmd_dot(const std::string& path) {
  const auto graph = graph_from_json(read_file(path));
  write_dot(std::cout, graph);
  return 0;
}

struct CampaignCliOptions {
  bool list = false;
  bool dry_run = false;
  bool quiet = false;
  std::string filter;
  int threads = 0;
  int iterations = 1000;
  std::uint64_t seed = 2005;
  /// .dwl files (from --workload and --workload-dir). Non-empty replaces
  /// the built-in registry with one "file/<stem>" family per file.
  std::vector<std::string> workload_files;
  QueueBackend queue_backend = QueueBackend::calendar;
  std::string json_path;
  std::string csv_path;
};

/// One scenario family per workload file: every registered prefetch policy
/// over the file's mix under online arrivals (the file's own arrivals
/// block when present).
ScenarioRegistry file_registry(const CampaignCliOptions& cli) {
  ScenarioRegistry registry;
  for (const std::string& path : cli.workload_files) {
    // Parse up front: a bad file should fail before any simulation, with
    // its line/column diagnostic (exit 2 via the WioParseError handler).
    const WorkloadFile workload = load_workload_file(path);
    const std::string stem = std::filesystem::path(path).stem().string();
    for (const std::string& policy : PolicyRegistry::instance().names()) {
      Scenario s;
      s.name = "file/" + stem + "/" + policy;
      s.family = "file/" + stem;
      s.workload = WorkloadKind::file;
      s.workload_file = path;
      s.mode = ScenarioMode::online;
      s.sim.policy = PolicySpec{policy};
      s.sim.iterations = cli.iterations;
      s.sim.seed = cli.seed;
      if (workload.has_arrivals) s.arrivals = workload.arrivals;
      s.queue_backend = cli.queue_backend;
      registry.add(std::move(s));
    }
  }
  return registry;
}

int cmd_campaign(const CampaignCliOptions& cli) {
  const auto registry = cli.workload_files.empty()
                            ? ScenarioRegistry::builtin(cli.iterations,
                                                        cli.seed)
                            : file_registry(cli);
  const std::vector<Scenario> scenarios = registry.match(cli.filter);
  if (scenarios.empty()) {
    std::cerr << "no scenario matches filter '" << cli.filter << "'\n";
    return 1;
  }

  if (cli.list || cli.dry_run) {
    TablePrinter table({"name", "workload", "approach", "tiles", "latency",
                        "iterations"});
    for (const Scenario& s : scenarios) {
      s.validate();
      table.add_row({s.name, to_string(s.workload), to_string(s.sim.policy),
                     std::to_string(s.sim.platform.tiles),
                     fmt_ms(s.sim.platform.reconfig_latency, 1) + " ms",
                     std::to_string(s.sim.iterations)});
    }
    if (cli.list) table.print(std::cout);
    std::cout << (cli.dry_run ? "dry run: " : "") << scenarios.size()
              << " scenarios validated\n";
    return 0;
  }

  // Open the report files up front: an unwritable path must not cost a
  // full campaign run.
  std::ofstream json_out, csv_out;
  if (!cli.json_path.empty()) {
    json_out.open(cli.json_path);
    if (!json_out)
      throw std::invalid_argument("cannot write " + cli.json_path);
  }
  if (!cli.csv_path.empty()) {
    csv_out.open(cli.csv_path);
    if (!csv_out) throw std::invalid_argument("cannot write " + cli.csv_path);
  }

  CampaignOptions options;
  options.threads = cli.threads;
  if (!cli.quiet) {
    options.on_result = [](const ScenarioResult& result, std::size_t done,
                           std::size_t total) {
      std::cerr << "[" << done << "/" << total << "] " << result.scenario.name
                << (result.ok ? "" : "  FAILED: " + result.error) << "  ("
                << fmt(result.wall_ms, 0) << " ms)\n";
    };
  }

  const auto t0 = std::chrono::steady_clock::now();
  const auto results = CampaignRunner(options).run(scenarios);
  const auto t1 = std::chrono::steady_clock::now();
  const double wall_s = std::chrono::duration<double>(t1 - t0).count();

  StatsAggregator aggregator;
  aggregator.add(results);

  std::size_t failed = 0;
  for (const ScenarioResult& result : results) failed += !result.ok;

  TablePrinter table({"family", "scenarios", "failed", "overhead mean",
                      "overhead p95", "reuse mean", "makespan mean"});
  auto metric_cell = [](const GroupSummary& g, const char* metric,
                        double MetricSummary::*field, const char* suffix) {
    const auto it = g.metrics.find(metric);
    return it == g.metrics.end() ? std::string("-")
                                 : fmt(it->second.*field, 2) + suffix;
  };
  for (const GroupSummary& g : aggregator.by_family())
    table.add_row(
        {g.family, std::to_string(g.scenarios), std::to_string(g.failed),
         metric_cell(g, "overhead_pct", &MetricSummary::mean, "%"),
         metric_cell(g, "overhead_pct", &MetricSummary::p95, "%"),
         metric_cell(g, "reuse_pct", &MetricSummary::mean, "%"),
         metric_cell(g, "makespan_ms", &MetricSummary::mean, " ms")});
  table.print(std::cout);
  std::cout << "\n"
            << results.size() << " scenarios in " << fmt(wall_s, 1) << " s ("
            << fmt(static_cast<double>(results.size()) / wall_s, 1)
            << "/s)\n";

  if (json_out.is_open()) {
    json_out << campaign_to_json(results, aggregator);
    std::cout << "JSON report: " << cli.json_path << "\n";
  }
  if (csv_out.is_open()) {
    csv_out << campaign_to_csv(results);
    std::cout << "CSV report: " << cli.csv_path << "\n";
  }
  return failed == 0 ? 0 : 1;
}

struct OnlineCliOptions {
  std::string workload = "multimedia";
  int tiles = 16;
  time_us latency = ms(4);
  int ports = 1;
  /// 0 = per-instance ISPs (the default model); > 0 = shared contended
  /// pool of that many ISP servers.
  int shared_isps = 0;
  PortDiscipline isp_discipline = PortDiscipline::fifo;
  ArrivalProcess arrivals;
  PortDiscipline discipline = PortDiscipline::fifo;
  ReplacementPolicy replacement = ReplacementPolicy::lru;
  int lookahead = 1;
  PoolOptions pool;
  /// Fixed per-admission cost; k_no_time = use the Section 4 value of each
  /// approach (--sched-cost-us paper).
  time_us scheduler_cost = 0;
  int iterations = 500;
  std::uint64_t seed = 2005;
  /// Real-time mode: 0 = deadlines off, > 0 = deadline_scale.
  double deadline_scale = 0.0;
  double crit_fraction = 0.25;
  bool preempt = false;
  /// Event-queue backend; reports are bit-identical between the two.
  QueueBackend queue_backend = QueueBackend::calendar;
  /// Print perf_summary() per approach after the table.
  bool perf = false;
  /// Policies to run, one table row each; empty = every registered policy.
  std::vector<PolicySpec> policies;
  /// Set when any arrival flag was given; a .dwl workload's arrivals block
  /// then stays overridden by the command line.
  bool user_arrivals = false;
  /// Record a structured event trace to this path (needs exactly one
  /// approach, so the trace maps to one report).
  std::string trace_path;
  TraceFormat trace_format = TraceFormat::jsonl;
};

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

ReplacementPolicy replacement_from_string(const std::string& text) {
  for (ReplacementPolicy policy :
       {ReplacementPolicy::lru, ReplacementPolicy::weight_aware,
        ReplacementPolicy::critical_first, ReplacementPolicy::random_tile,
        ReplacementPolicy::oracle})
    if (text == to_string(policy)) return policy;
  throw std::invalid_argument(
      "unknown replacement policy '" + text +
      "' (use lru, weight, critical-first, random or oracle)");
}

int cmd_online(OnlineCliOptions cli) {
  PlatformConfig platform = virtex2_platform(cli.tiles);
  platform.reconfig_latency = cli.latency;
  platform.reconfig_ports = cli.ports;
  if (cli.shared_isps > 0) platform.isps = cli.shared_isps;
  platform.validate();
  cli.pool.validate();

  std::unique_ptr<MultimediaWorkload> multimedia;
  std::unique_ptr<PocketGlWorkload> pocket_gl;
  std::unique_ptr<FileWorkload> file_workload;
  IterationSampler sampler;
  if (cli.workload == "multimedia") {
    multimedia = make_multimedia_workload(platform);
    sampler = multimedia_sampler(*multimedia);
  } else if (cli.workload == "pocket_gl") {
    pocket_gl = make_pocket_gl_workload(platform);
    sampler = pocket_gl_task_sampler(*pocket_gl);
  } else if (ends_with(cli.workload, ".dwl")) {
    const WorkloadFile workload = load_workload_file(cli.workload);
    if (workload.has_arrivals && !cli.user_arrivals)
      cli.arrivals = workload.arrivals;
    file_workload = build_file_workload(workload, platform);
    sampler = file_workload_sampler(*file_workload);
  } else {
    throw std::invalid_argument("online workload must be multimedia, "
                                "pocket_gl or a .dwl file");
  }
  cli.arrivals.validate();

  std::cout << "online simulation: " << cli.workload << ", " << cli.tiles
            << " tiles, " << cli.ports << " port(s), "
            << to_string(cli.arrivals.kind) << " arrivals";
  if (cli.arrivals.kind != ArrivalProcess::Kind::closed_loop)
    std::cout << " @ " << fmt(cli.arrivals.rate_per_s, 1) << "/s";
  std::cout << ", " << to_string(cli.discipline) << " port, "
            << to_string(cli.pool.admission) << " admission";
  if (cli.shared_isps > 0)
    std::cout << ", " << cli.shared_isps << " shared ISP(s) ("
              << to_string(cli.isp_discipline) << ")";
  if (cli.deadline_scale > 0.0)
    std::cout << ", deadlines x" << fmt(cli.deadline_scale, 1) << " (crit "
              << fmt_pct(cli.crit_fraction * 100.0)
              << (cli.preempt ? ", preempt" : "") << ")";
  std::cout
            << (cli.pool.contiguous ? " (contiguous)" : "")
            << (cli.pool.defrag ? " + defrag" : "") << ", " << cli.iterations
            << " iterations, seed " << cli.seed << "\n\n";

  std::vector<PolicySpec> policies = cli.policies;
  if (policies.empty())
    for (const std::string& name : PolicyRegistry::instance().names())
      policies.emplace_back(name);
  if (!cli.trace_path.empty() && policies.size() != 1) {
    std::cerr << "error: --trace records one run; pick exactly one "
                 "--approach (got "
              << policies.size() << ")\n";
    return 2;
  }

  TablePrinter table({"policy", "instances", "overhead", "reuse",
                      "response mean", "response p95", "queueing mean",
                      "port util", "isp util", "frag", "skips", "moves",
                      "peak migs", "prefetches"});
  TablePrinter deadline_table({"policy", "jobs", "miss", "high-crit miss",
                               "mean lateness", "max tardiness",
                               "preemptions"});
  std::vector<std::pair<std::string, std::string>> perf_blocks;
  for (const PolicySpec& policy : policies) {
    OnlineSimOptions options;
    options.platform = platform;
    options.policy = policy;
    options.arrivals = cli.arrivals;
    options.port_discipline = cli.discipline;
    options.replacement = cli.replacement;
    options.intertask_lookahead = cli.lookahead;
    options.pool = cli.pool;
    options.scheduler_cost = cli.scheduler_cost == k_no_time
                                 ? paper_scheduler_cost(policy)
                                 : cli.scheduler_cost;
    options.shared_isps = cli.shared_isps > 0;
    options.isp_discipline = cli.isp_discipline;
    options.record_spans = false;
    options.queue_backend = cli.queue_backend;
    options.deadline_scale = cli.deadline_scale;
    options.high_criticality_fraction = cli.crit_fraction;
    options.preempt = cli.preempt;
    options.seed = cli.seed;
    options.iterations = cli.iterations;
    std::unique_ptr<TraceRecorder> recorder;
    if (!cli.trace_path.empty()) {
      recorder = std::make_unique<TraceRecorder>(cli.trace_path,
                                                 cli.trace_format, options);
      options.trace = recorder.get();
    }
    const OnlineReport report = run_online_simulation(options, sampler);
    if (recorder) {
      recorder->finish(report);
      std::cerr << "trace: " << cli.trace_path << " ("
                << to_string(cli.trace_format) << ")\n";
    }
    if (cli.deadline_scale > 0.0)
      deadline_table.add_row({to_string(policy),
                              std::to_string(report.deadline_jobs),
                              fmt_pct(report.deadline_miss_pct, 2),
                              fmt_pct(report.high_crit_miss_pct, 2),
                              fmt(report.mean_lateness_ms, 1) + " ms",
                              fmt(report.max_tardiness_ms, 1) + " ms",
                              std::to_string(report.preemptions)});
    if (cli.perf)
      perf_blocks.emplace_back(to_string(policy), perf_summary(report.perf));
    table.add_row({to_string(policy), std::to_string(report.sim.instances),
                   fmt_pct(report.sim.overhead_pct, 2),
                   fmt_pct(report.sim.reuse_pct),
                   fmt(report.mean_response_ms, 1) + " ms",
                   fmt(report.response_p95_ms, 1) + " ms",
                   fmt(report.mean_queueing_ms, 1) + " ms",
                   fmt_pct(report.port_utilisation_pct),
                   fmt_pct(report.isp_utilisation_pct),
                   fmt_pct(report.mean_frag_pct),
                   std::to_string(report.queue_skips),
                   std::to_string(report.defrag_moves),
                   std::to_string(report.peak_concurrent_migrations),
                   std::to_string(report.sim.intertask_prefetches)});
  }
  table.print(std::cout);
  if (cli.deadline_scale > 0.0) {
    std::cout << "\ndeadline summary:\n";
    deadline_table.print(std::cout);
  }
  for (const auto& [name, summary] : perf_blocks)
    std::cout << "\nperf counters: " << name << " ("
              << to_string(cli.queue_backend) << " queue)\n"
              << summary;
  return 0;
}

struct GenworkCliOptions {
  std::string out_dir = ".";
  int count = 10;
  /// Shape of every generated workload; `seed` is the base seed (file i
  /// uses seed + i, and the seed is part of the file name, so a directory
  /// of fuzzed workloads is reproducible from the command line alone).
  FuzzWorkloadOptions fuzz;
};

int cmd_genwork(const GenworkCliOptions& cli) {
  if (cli.count < 1)
    throw std::invalid_argument("--count needs a positive value");
  std::filesystem::create_directories(cli.out_dir);
  for (int i = 0; i < cli.count; ++i) {
    FuzzWorkloadOptions options = cli.fuzz;
    options.seed = cli.fuzz.seed + static_cast<std::uint64_t>(i);
    char name[32];
    std::snprintf(name, sizeof(name), "fuzz%06llu.dwl",
                  static_cast<unsigned long long>(options.seed));
    const auto path = std::filesystem::path(cli.out_dir) / name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::invalid_argument("cannot write " + path.string());
    out << fuzz_workload_text(options);
  }
  std::cout << cli.count << " workload(s) in " << cli.out_dir << " (seeds "
            << cli.fuzz.seed << ".."
            << (cli.fuzz.seed + static_cast<std::uint64_t>(cli.count) - 1)
            << ")\n";
  return 0;
}

int cmd_trace_info(const std::string& path) {
  const TraceData trace = read_trace(path);
  const TraceHeader& h = trace.header;
  std::cout << "schema: " << h.schema << "\n"
            << "policy: " << h.policy << ", " << h.arrivals << " arrivals, "
            << h.queue_backend << " queue\n"
            << "seed: " << h.seed << ", iterations: " << h.iterations << "\n"
            << "platform: " << h.tiles << " tiles, " << h.reconfig_ports
            << " port(s), " << h.isps << " isp(s), "
            << fmt_ms(h.reconfig_latency, 1) << " ms reconfig\n"
            << "preps: " << h.preps.size() << "\n"
            << "events: " << trace.events.size() << "\n"
            << "live report: " << (trace.has_live ? "present" : "absent")
            << "\n";
  return 0;
}

/// Replay-verifies a trace: re-derives the OnlineReport from the event
/// stream and compares it bit-for-bit against the recorded live report.
int cmd_trace_verify(const std::string& path) {
  const TraceData trace = read_trace(path);
  const std::vector<std::string> mismatches = verify_trace(trace);
  if (mismatches.empty()) {
    std::cout << "replay verified: " << trace.events.size()
              << " events reproduce the live report bit-identically\n";
    return 0;
  }
  std::cerr << "replay FAILED: " << mismatches.size() << " mismatch(es)\n";
  for (const std::string& mismatch : mismatches)
    std::cerr << "  " << mismatch << "\n";
  return 1;
}

int cmd_trace_render(const std::string& path, const std::string& format,
                     const std::string& out_path,
                     const TraceRenderOptions& options) {
  const TraceData trace = read_trace(path);
  std::string rendering;
  if (format == "ascii")
    rendering = render_trace_ascii(trace, options);
  else if (format == "svg")
    rendering = render_trace_svg(trace, options);
  else {
    std::cerr << "error: unknown render format '" << format
              << "' (expected ascii or svg)\n";
    return 2;
  }
  if (out_path.empty()) {
    std::cout << rendering;
    return 0;
  }
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::invalid_argument("cannot write " + out_path);
  out << rendering;
  std::cout << "rendered " << trace.events.size() << " events to " << out_path
            << "\n";
  return 0;
}

std::vector<int> parse_id_list(const std::string& arg) {
  std::vector<int> ids;
  std::istringstream is(arg);
  std::string token;
  while (std::getline(is, token, ',')) ids.push_back(std::stoi(token));
  return ids;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  try {
    if (args[0] == "demo") return cmd_demo();
    if (args[0] == "list-policies" || args[0] == "--list-policies")
      return cmd_list_policies();
    if (args[0] == "campaign") {
      CampaignCliOptions cli;
      for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string& arg = args[i];
        const bool has_value = i + 1 < args.size();
        if (arg == "--list")
          cli.list = true;
        else if (arg == "--list-policies")
          return cmd_list_policies();
        else if (arg == "--dry-run")
          cli.dry_run = true;
        else if (arg == "--quiet")
          cli.quiet = true;
        else if (arg == "--filter" && has_value)
          cli.filter = args[++i];
        else if (arg == "--threads" && has_value)
          cli.threads = std::stoi(args[++i]);
        else if (arg == "--iterations" && has_value)
          cli.iterations = std::stoi(args[++i]);
        else if (arg == "--seed" && has_value)
          cli.seed = std::stoull(args[++i]);
        else if (arg == "--json" && has_value)
          cli.json_path = args[++i];
        else if (arg == "--csv" && has_value)
          cli.csv_path = args[++i];
        else if (arg == "--workload" && has_value)
          cli.workload_files.push_back(args[++i]);
        else if (arg == "--workload-dir" && has_value) {
          const std::string dir = args[++i];
          std::vector<std::string> found;
          for (const auto& entry : std::filesystem::directory_iterator(dir))
            if (entry.path().extension() == ".dwl")
              found.push_back(entry.path().string());
          // Directory iteration order is OS-dependent; sort for
          // reproducible scenario names and report order.
          std::sort(found.begin(), found.end());
          if (found.empty())
            throw std::invalid_argument("no .dwl files in '" + dir + "'");
          cli.workload_files.insert(cli.workload_files.end(), found.begin(),
                                    found.end());
        }
        else if (arg == "--queue" && has_value)
          cli.queue_backend = queue_backend_from_string(args[++i]);
        else
          return usage_unknown("campaign", arg);
      }
      return cmd_campaign(cli);
    }
    if (args[0] == "online") {
      OnlineCliOptions cli;
      for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string& arg = args[i];
        const bool has_value = i + 1 < args.size();
        if (arg == "--workload" && has_value)
          cli.workload = args[++i];
        else if (arg == "--tiles" && has_value)
          cli.tiles = std::stoi(args[++i]);
        else if (arg == "--latency-us" && has_value)
          cli.latency = std::stoll(args[++i]);
        else if (arg == "--ports" && has_value)
          cli.ports = std::stoi(args[++i]);
        else if (arg == "--arrivals" && has_value) {
          cli.arrivals.kind = parse_arrivals_arg(args[++i]);
          cli.user_arrivals = true;
        }
        else if (arg == "--rate" && has_value) {
          cli.arrivals.rate_per_s = std::stod(args[++i]);
          cli.user_arrivals = true;
        }
        else if (arg == "--period-us" && has_value) {
          cli.arrivals.period_us = std::stoll(args[++i]);
          cli.user_arrivals = true;
        }
        else if (arg == "--deadline-scale" && has_value)
          cli.deadline_scale = std::stod(args[++i]);
        else if (arg == "--crit-fraction" && has_value)
          cli.crit_fraction = std::stod(args[++i]);
        else if (arg == "--preempt")
          cli.preempt = true;
        else if (arg == "--burst" && has_value) {
          cli.arrivals.burst_size = std::stoi(args[++i]);
          cli.user_arrivals = true;
        }
        else if (arg == "--think-us" && has_value) {
          cli.arrivals.think_time = std::stoll(args[++i]);
          cli.user_arrivals = true;
        }
        else if (arg == "--discipline" && has_value)
          cli.discipline = port_discipline_from_string(args[++i]);
        else if (arg == "--isp" && has_value) {
          cli.shared_isps = std::stoi(args[++i]);
          if (cli.shared_isps < 1)
            throw std::invalid_argument("--isp needs a positive ISP count");
        }
        else if (arg == "--isp-discipline" && has_value)
          cli.isp_discipline = port_discipline_from_string(args[++i]);
        else if (arg == "--replacement" && has_value)
          cli.replacement = replacement_from_string(args[++i]);
        else if (arg == "--lookahead" && has_value)
          cli.lookahead = std::stoi(args[++i]);
        else if (arg == "--admission" && has_value)
          cli.pool.admission = admission_policy_from_string(args[++i]);
        else if (arg == "--contiguous")
          cli.pool.contiguous = true;
        else if (arg == "--defrag") {
          cli.pool.contiguous = true;
          cli.pool.defrag = true;
        }
        else if (arg == "--window" && has_value)
          cli.pool.reorder_window = std::stoi(args[++i]);
        else if (arg == "--max-bypass" && has_value)
          cli.pool.max_bypass = std::stoi(args[++i]);
        else if (arg == "--sched-cost-us" && has_value) {
          const std::string& value = args[++i];
          if (value == "paper") {
            cli.scheduler_cost = k_no_time;  // per-approach Section 4 value
          } else {
            cli.scheduler_cost = std::stoll(value);
            if (cli.scheduler_cost < 0)
              throw std::invalid_argument(
                  "--sched-cost-us needs a non-negative value or 'paper'");
          }
        }
        else if (arg == "--iterations" && has_value)
          cli.iterations = std::stoi(args[++i]);
        else if (arg == "--seed" && has_value)
          cli.seed = std::stoull(args[++i]);
        else if (arg == "--queue" && has_value)
          cli.queue_backend = queue_backend_from_string(args[++i]);
        else if (arg == "--perf")
          cli.perf = true;
        else if (arg == "--trace" && has_value)
          cli.trace_path = args[++i];
        else if (arg == "--trace-format" && has_value)
          cli.trace_format = trace_format_from_string(args[++i]);
        else if (arg == "--approach" && has_value)
          cli.policies.push_back(parse_policy_arg(args[++i]));
        else if (arg == "--list-policies")
          return cmd_list_policies();
        else
          return usage_unknown("online", arg);
      }
      return cmd_online(cli);
    }
    if (args[0] == "genwork") {
      GenworkCliOptions cli;
      for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string& arg = args[i];
        const bool has_value = i + 1 < args.size();
        if (arg == "--out" && has_value)
          cli.out_dir = args[++i];
        else if (arg == "--count" && has_value)
          cli.count = std::stoi(args[++i]);
        else if (arg == "--seed" && has_value)
          cli.fuzz.seed = std::stoull(args[++i]);
        else if (arg == "--tasks" && has_value)
          cli.fuzz.tasks = std::stoi(args[++i]);
        else if (arg == "--variants" && has_value)
          cli.fuzz.variants = std::stoi(args[++i]);
        else if (arg == "--configs" && has_value)
          cli.fuzz.configs = std::stoi(args[++i]);
        else if (arg == "--min-nodes" && has_value)
          cli.fuzz.min_nodes = std::stoi(args[++i]);
        else if (arg == "--max-nodes" && has_value)
          cli.fuzz.max_nodes = std::stoi(args[++i]);
        else
          return usage_unknown("genwork", arg);
      }
      return cmd_genwork(cli);
    }
    if (args[0] == "trace") {
      if (args.size() < 3) return usage();
      const std::string& action = args[1];
      const std::string& path = args[2];
      if (action == "info") return cmd_trace_info(path);
      if (action == "verify") return cmd_trace_verify(path);
      if (action == "render") {
        TraceRenderOptions options;
        std::string format = "ascii";
        std::string out_path;
        for (std::size_t i = 3; i < args.size(); ++i) {
          const std::string& arg = args[i];
          const bool has_value = i + 1 < args.size();
          if (arg == "--format" && has_value)
            format = args[++i];
          else if (arg == "--out" && has_value)
            out_path = args[++i];
          else if (arg == "--width" && has_value)
            options.width = std::stoi(args[++i]);
          else if (arg == "--from-us" && has_value)
            options.from = std::stoll(args[++i]);
          else if (arg == "--until-us" && has_value)
            options.until = std::stoll(args[++i]);
          else
            return usage_unknown("trace", arg);
        }
        return cmd_trace_render(path, format, out_path, options);
      }
      return usage_unknown("trace", action);
    }
    if (args[0] == "info" && args.size() >= 2) return cmd_info(args[1]);
    if (args[0] == "dot" && args.size() >= 2) return cmd_dot(args[1]);
    if (args[0] == "schedule" && args.size() >= 2) {
      int tiles = 8, ports = 1;
      time_us latency = ms(4);
      std::vector<int> resident;
      for (std::size_t i = 2; i + 1 < args.size(); i += 2) {
        if (args[i] == "--tiles")
          tiles = std::stoi(args[i + 1]);
        else if (args[i] == "--latency-us")
          latency = std::stoll(args[i + 1]);
        else if (args[i] == "--ports")
          ports = std::stoi(args[i + 1]);
        else if (args[i] == "--resident")
          resident = parse_id_list(args[i + 1]);
        else
          return usage();
      }
      return cmd_schedule(args[1], tiles, latency, ports, resident);
    }
  } catch (const WioParseError& e) {
    // Workload parse diagnostics carry line/column and map to the same
    // exit code as flag misuse: the input was malformed, nothing ran.
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}

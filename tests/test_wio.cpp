// Workload ingestion subsystem (src/wio): parser round trips and
// line/column diagnostics, canonical-writer stability, the committed
// multimedia mix file vs the in-code builder, sampler parity, the fuzz
// generator's determinism, and campaign bit-identity over a directory of
// fuzzed workloads at different thread counts and queue backends.

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "policy/names.hpp"
#include "runner/campaign.hpp"
#include "runner/report.hpp"
#include "sim/workloads.hpp"
#include "wio/fuzz.hpp"
#include "wio/workload_build.hpp"
#include "wio/workload_format.hpp"

namespace drhw {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out << text;
}

const char* k_small_workload =
    "drhw-workload-v1\n"
    "configs 4\n"
    "arrivals bursty\n"
    "  rate 10\n"
    "  burst 3\n"
    "end\n"
    "mix\n"
    "  include_prob 0.5\n"
    "  use alpha 1\n"
    "end\n"
    "task alpha\n"
    "  variant main 1\n"
    "    rt 9000 0 1\n"
    "    node a 1000 drhw cfg 0\n"
    "    node b 2000 drhw cfg 1 energy 2.5\n"
    "    node c 500 isp\n"
    "    edge a b\n"
    "    edge b c\n"
    "  end\n"
    "end\n";

TEST(WorkloadFormat, ParsesTheGrammar) {
  const WorkloadFile file = parse_workload(k_small_workload);
  EXPECT_EQ(file.configs, 4);
  ASSERT_TRUE(file.has_arrivals);
  EXPECT_EQ(file.arrivals.kind, ArrivalProcess::Kind::bursty);
  EXPECT_DOUBLE_EQ(file.arrivals.rate_per_s, 10.0);
  EXPECT_EQ(file.arrivals.burst_size, 3);
  EXPECT_DOUBLE_EQ(file.include_prob, 0.5);
  ASSERT_EQ(file.mix.size(), 1u);
  EXPECT_EQ(file.mix[0].task, "alpha");
  ASSERT_EQ(file.tasks.size(), 1u);
  const WorkloadTask& task = file.tasks[0];
  EXPECT_EQ(task.name, "alpha");
  ASSERT_EQ(task.variants.size(), 1u);
  const WorkloadVariant& variant = task.variants[0];
  EXPECT_TRUE(variant.has_rt);
  EXPECT_EQ(variant.rt.relative_deadline_us, 9000);
  EXPECT_EQ(variant.rt.criticality, 1);
  ASSERT_EQ(variant.nodes.size(), 3u);
  EXPECT_EQ(variant.nodes[0].config, 0);
  EXPECT_DOUBLE_EQ(variant.nodes[1].energy, 2.5);
  EXPECT_TRUE(variant.nodes[2].isp);
  EXPECT_EQ(variant.nodes[2].config, k_no_config);
  ASSERT_EQ(variant.edges.size(), 2u);
  EXPECT_EQ(variant.edges[1].from, "b");
}

TEST(WorkloadFormat, WriterIsCanonicalAndStable) {
  const WorkloadFile file = parse_workload(k_small_workload);
  const std::string once = write_workload(file);
  // write(parse(write(x))) == write(x): the canonical form is a fixed
  // point of the round trip.
  EXPECT_EQ(write_workload(parse_workload(once)), once);
}

// --- satellite: parser error paths, each with line/column ---------------

TEST(WorkloadFormat, RejectsUnknownTopLevelKey) {
  try {
    parse_workload("drhw-workload-v1\nbogus 1\n");
    FAIL() << "expected WioParseError";
  } catch (const WioParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_EQ(e.column(), 1);
    EXPECT_NE(std::string(e.what()).find("unknown key 'bogus'"),
              std::string::npos);
  }
}

TEST(WorkloadFormat, RejectsUnknownKeyInsideBlocks) {
  const char* text =
      "drhw-workload-v1\n"
      "task t\n"
      "  variant s 1\n"
      "    node a 100 drhw\n"
      "    frobnicate 3\n";
  try {
    parse_workload(text);
    FAIL() << "expected WioParseError";
  } catch (const WioParseError& e) {
    EXPECT_EQ(e.line(), 5);
    EXPECT_EQ(e.column(), 5);
    EXPECT_NE(std::string(e.what()).find("unknown key 'frobnicate'"),
              std::string::npos);
  }
}

TEST(WorkloadFormat, RejectsDuplicateNodeId) {
  const char* text =
      "drhw-workload-v1\n"
      "task t\n"
      "  variant s 1\n"
      "    node a 100 drhw\n"
      "    node a 200 drhw\n"
      "  end\n"
      "end\n";
  try {
    parse_workload(text);
    FAIL() << "expected WioParseError";
  } catch (const WioParseError& e) {
    EXPECT_EQ(e.line(), 5);
    EXPECT_EQ(e.column(), 10);
    EXPECT_NE(std::string(e.what()).find("duplicate node 'a'"),
              std::string::npos);
  }
}

TEST(WorkloadFormat, RejectsDanglingConfigReference) {
  // cfg used without any `configs` declaration...
  try {
    parse_workload(
        "drhw-workload-v1\n"
        "task t\n"
        "  variant s 1\n"
        "    node a 100 drhw cfg 3\n"
        "  end\n"
        "end\n");
    FAIL() << "expected WioParseError";
  } catch (const WioParseError& e) {
    EXPECT_EQ(e.line(), 4);
    EXPECT_NE(std::string(e.what()).find("dangling config reference"),
              std::string::npos);
  }
  // ... and cfg outside the declared space.
  try {
    parse_workload(
        "drhw-workload-v1\n"
        "configs 2\n"
        "task t\n"
        "  variant s 1\n"
        "    node a 100 drhw cfg 2\n"
        "  end\n"
        "end\n");
    FAIL() << "expected WioParseError";
  } catch (const WioParseError& e) {
    EXPECT_EQ(e.line(), 5);
    EXPECT_NE(std::string(e.what()).find("dangling config reference"),
              std::string::npos);
  }
}

TEST(WorkloadFormat, RejectsDagCycle) {
  const char* text =
      "drhw-workload-v1\n"
      "task t\n"
      "  variant s 1\n"
      "    node a 100 drhw\n"
      "    node b 100 drhw\n"
      "    edge a b\n"
      "    edge b a\n"
      "  end\n"
      "end\n";
  try {
    parse_workload(text);
    FAIL() << "expected WioParseError";
  } catch (const WioParseError& e) {
    EXPECT_EQ(e.line(), 3);  // reported at the variant opening
    EXPECT_NE(std::string(e.what()).find("cycle"), std::string::npos);
  }
}

TEST(WorkloadFormat, RejectsDanglingEdgeEndpoint) {
  const char* text =
      "drhw-workload-v1\n"
      "task t\n"
      "  variant s 1\n"
      "    node a 100 drhw\n"
      "    edge a z\n"
      "  end\n"
      "end\n";
  try {
    parse_workload(text);
    FAIL() << "expected WioParseError";
  } catch (const WioParseError& e) {
    EXPECT_EQ(e.line(), 5);
    EXPECT_NE(std::string(e.what()).find("unknown node 'z'"),
              std::string::npos);
  }
}

TEST(WorkloadFormat, RejectsTruncatedFile) {
  const char* text =
      "drhw-workload-v1\n"
      "task t\n"
      "  variant s 1\n"
      "    node a 100 drhw\n";
  try {
    parse_workload(text);
    FAIL() << "expected WioParseError";
  } catch (const WioParseError& e) {
    EXPECT_EQ(e.line(), 5);
    EXPECT_EQ(e.column(), 1);
    EXPECT_NE(std::string(e.what()).find("unexpected end of file"),
              std::string::npos);
  }
}

TEST(WorkloadFormat, RejectsMixReferencingUnknownTask) {
  const char* text =
      "drhw-workload-v1\n"
      "mix\n"
      "  use ghost 1\n"
      "end\n"
      "task t\n"
      "  variant s 1\n"
      "    node a 100 drhw\n"
      "  end\n"
      "end\n";
  try {
    parse_workload(text);
    FAIL() << "expected WioParseError";
  } catch (const WioParseError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_NE(std::string(e.what()).find("unknown task 'ghost'"),
              std::string::npos);
  }
}

TEST(WorkloadFormat, LoadPrefixesThePath) {
  const std::string path =
      testing::TempDir() + "/wio_bad_workload.dwl";
  write_file(path, "drhw-workload-v1\nbogus 1\n");
  try {
    load_workload_file(path);
    FAIL() << "expected WioParseError";
  } catch (const WioParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find(path + ":2:1:"), std::string::npos);
  }
}

// --- committed multimedia mix file vs the in-code builder ---------------

TEST(WorkloadExport, CommittedMultimediaMixMatchesTheBuilder) {
  const auto platform = virtex2_platform(8);
  const auto workload = make_multimedia_workload(platform);
  const std::string expected =
      write_workload(workload_file_from_multimedia(*workload));
  const std::string committed = read_file(
      std::string(DRHW_SOURCE_DIR) + "/examples/workloads/multimedia_mix.dwl");
  // Byte-for-byte: regenerate with the exporter if the builder changes.
  EXPECT_EQ(committed, expected);
}

TEST(WorkloadBuild, FileSamplerReproducesTheMultimediaMix) {
  const auto platform = virtex2_platform(8);
  const auto in_code = make_multimedia_workload(platform);
  const WorkloadFile exported = parse_workload(
      write_workload(workload_file_from_multimedia(*in_code)));
  const auto from_file = build_file_workload(exported, platform);

  // Same RNG-call structure + same graphs => bit-identical reports.
  for (const std::string& policy :
       {std::string(policy_names::no_prefetch),
        std::string(policy_names::hybrid)}) {
    SimOptions options;
    options.platform = platform;
    options.policy = policy;
    options.seed = 77;
    options.iterations = 300;
    const SimReport a =
        run_simulation(options, multimedia_sampler(*in_code, 0.8));
    const SimReport b =
        run_simulation(options, file_workload_sampler(*from_file));
    EXPECT_EQ(a.total_actual, b.total_actual) << policy;
    EXPECT_EQ(a.loads, b.loads) << policy;
    EXPECT_EQ(a.reused_subtasks, b.reused_subtasks) << policy;
    EXPECT_EQ(a.intertask_prefetches, b.intertask_prefetches) << policy;
    EXPECT_DOUBLE_EQ(a.overhead_pct, b.overhead_pct) << policy;
    EXPECT_DOUBLE_EQ(a.energy, b.energy) << policy;
  }
}

// --- fuzz generator ------------------------------------------------------

TEST(WorkloadFuzz, SameSeedSameBytes) {
  FuzzWorkloadOptions options;
  options.seed = 42;
  const std::string a = fuzz_workload_text(options);
  const std::string b = fuzz_workload_text(options);
  EXPECT_EQ(a, b);
  options.seed = 43;
  EXPECT_NE(fuzz_workload_text(options), a);
}

TEST(WorkloadFuzz, GeneratedWorkloadsParseAndBuild) {
  const auto platform = virtex2_platform(8);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    FuzzWorkloadOptions options;
    options.seed = seed;
    const std::string text = fuzz_workload_text(options);
    const WorkloadFile file = parse_workload(text);
    EXPECT_EQ(write_workload(file), text) << "seed " << seed;
    const auto workload = build_file_workload(file, platform);
    EXPECT_EQ(workload->prepared.size(), file.tasks.size());
  }
}

// --- satellite: fuzzed campaign determinism ------------------------------

std::vector<Scenario> fuzz_campaign_scenarios(const std::string& dir,
                                              QueueBackend backend) {
  std::vector<Scenario> scenarios;
  for (int i = 0; i < 50; ++i) {
    FuzzWorkloadOptions options;
    options.seed = 100 + static_cast<std::uint64_t>(i);
    const std::string path =
        dir + "/fuzz" + std::to_string(options.seed) + ".dwl";
    write_file(path, fuzz_workload_text(options));
    Scenario s;
    s.name = "file/fuzz" + std::to_string(options.seed) + "/hybrid";
    s.family = "file/fuzz" + std::to_string(options.seed);
    s.workload = WorkloadKind::file;
    s.workload_file = path;
    s.mode = ScenarioMode::online;
    s.sim.policy = PolicySpec{std::string(policy_names::hybrid)};
    s.sim.seed = 7;
    s.sim.iterations = 25;
    s.queue_backend = backend;
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

TEST(WorkloadFuzz, FiftyWorkloadCampaignIsThreadCountInvariant) {
  const std::string dir = testing::TempDir() + "/wio_fuzz_campaign";
  std::filesystem::create_directories(dir);
  const auto scenarios =
      fuzz_campaign_scenarios(dir, QueueBackend::calendar);

  CampaignOptions serial_options;
  serial_options.threads = 1;
  serial_options.record_wall_time = false;
  CampaignOptions parallel_options;
  parallel_options.threads = 8;
  parallel_options.record_wall_time = false;

  const auto serial = CampaignRunner(serial_options).run(scenarios);
  const auto parallel = CampaignRunner(parallel_options).run(scenarios);
  for (const auto& result : serial) ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(campaign_to_csv(serial), campaign_to_csv(parallel));
}

TEST(WorkloadFuzz, FiftyWorkloadCampaignIsQueueBackendInvariant) {
  const std::string dir = testing::TempDir() + "/wio_fuzz_backends";
  std::filesystem::create_directories(dir);
  CampaignOptions options;
  options.record_wall_time = false;
  const auto calendar = CampaignRunner(options).run(
      fuzz_campaign_scenarios(dir, QueueBackend::calendar));
  const auto heap = CampaignRunner(options).run(
      fuzz_campaign_scenarios(dir, QueueBackend::heap));
  ASSERT_EQ(calendar.size(), heap.size());
  for (std::size_t i = 0; i < calendar.size(); ++i) {
    const ScenarioResult& a = calendar[i];
    const ScenarioResult& b = heap[i];
    ASSERT_TRUE(a.ok) << a.error;
    ASSERT_TRUE(b.ok) << b.error;
    // Every simulated-time metric must match bit-for-bit; only the
    // descriptor (queue_backend) and the kernel perf counters may differ.
    EXPECT_EQ(a.report.total_actual, b.report.total_actual) << a.scenario.name;
    EXPECT_EQ(a.report.loads, b.report.loads) << a.scenario.name;
    EXPECT_EQ(a.report.reused_subtasks, b.report.reused_subtasks);
    EXPECT_DOUBLE_EQ(a.report.energy, b.report.energy);
    EXPECT_DOUBLE_EQ(a.mean_response_ms, b.mean_response_ms)
        << a.scenario.name;
    EXPECT_DOUBLE_EQ(a.max_response_ms, b.max_response_ms);
    EXPECT_DOUBLE_EQ(a.mean_queueing_ms, b.mean_queueing_ms);
    EXPECT_DOUBLE_EQ(a.port_utilisation_pct, b.port_utilisation_pct);
    EXPECT_DOUBLE_EQ(a.horizon_ms, b.horizon_ms);
    EXPECT_DOUBLE_EQ(a.response_p99_ms, b.response_p99_ms);
    EXPECT_DOUBLE_EQ(a.frag_pct, b.frag_pct);
    EXPECT_EQ(a.queue_skips, b.queue_skips);
  }
}

// --- registry / report integration --------------------------------------

TEST(WorkloadScenario, ValidateEnforcesFileFields) {
  Scenario s;
  s.name = "x";
  s.family = "x";
  s.workload = WorkloadKind::file;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s.workload_file = "w.dwl";
  EXPECT_NO_THROW(s.validate());
  s.workload = WorkloadKind::multimedia;
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(WorkloadScenario, ReportRoundTripsWorkloadFileAndQueueBackend) {
  const std::string dir = testing::TempDir() + "/wio_report";
  std::filesystem::create_directories(dir);
  FuzzWorkloadOptions options;
  options.seed = 5;
  const std::string path = dir + "/w.dwl";
  write_file(path, fuzz_workload_text(options));

  Scenario s;
  s.name = "file/w/hybrid";
  s.family = "file/w";
  s.workload = WorkloadKind::file;
  s.workload_file = path;
  s.mode = ScenarioMode::online;
  s.sim.policy = PolicySpec{std::string(policy_names::hybrid)};
  s.sim.iterations = 10;
  s.queue_backend = QueueBackend::heap;
  const ScenarioResult result = run_scenario(s, /*record_wall_time=*/false);
  ASSERT_TRUE(result.ok) << result.error;

  StatsAggregator aggregator;
  aggregator.add({result});
  const auto parsed = campaign_from_json(campaign_to_json({result},
                                                          aggregator));
  ASSERT_EQ(parsed.scenarios.size(), 1u);
  EXPECT_EQ(parsed.scenarios[0].workload, "file");
  EXPECT_EQ(parsed.scenarios[0].workload_file, path);
  EXPECT_EQ(parsed.scenarios[0].queue_backend, "heap");

  const auto rows = campaign_from_csv(campaign_to_csv({result}));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].workload_file, path);
  EXPECT_EQ(rows[0].queue_backend, "heap");
}

}  // namespace
}  // namespace drhw

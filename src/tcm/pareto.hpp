#pragma once

/// \file pareto.hpp
/// Minimal reimplementation of the TCM design-time layer (paper refs [9,10])
/// that the prefetch modules plug into: per scenario, a Pareto curve of
/// (execution time, energy) points, each carrying a concrete assignment and
/// schedule of the subtasks over the processing elements.
///
/// The curve is produced by sweeping the tile budget: more tiles shorten the
/// schedule but cost activation/leakage energy. Reconfiguration energy is
/// charged for every DRHW subtask (the design-time scheduler cannot predict
/// reuse — exactly the paper's motivation for run-time load cancellation).

#include <vector>

#include "graph/subtask_graph.hpp"
#include "platform/platform.hpp"
#include "schedule/placement.hpp"

namespace drhw {

/// One point of a scenario's Pareto curve.
struct ParetoPoint {
  int tiles = 0;           ///< tile budget this point was scheduled with
  time_us exec_time = 0;   ///< ideal makespan (reconfiguration neglected)
  double energy = 0.0;     ///< estimated energy of one execution
  Placement placement;     ///< the concrete schedule
};

/// Energy model knobs for Pareto generation.
struct EnergyModel {
  /// Energy charged per tile actually used (activation + leakage proxy).
  double per_tile = 2.0;
  /// Multiplier on the sum of subtask exec_energy values.
  double exec_scale = 1.0;
};

/// Builds the Pareto curve for one scenario by sweeping tile budgets
/// 1..max_tiles and pruning dominated points. Points are returned by
/// strictly decreasing exec_time and strictly increasing energy.
std::vector<ParetoPoint> build_pareto_curve(const SubtaskGraph& graph,
                                            int max_tiles,
                                            const PlatformConfig& platform,
                                            const EnergyModel& model = {});

}  // namespace drhw

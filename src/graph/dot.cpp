#include "graph/dot.hpp"

#include <ostream>

#include "util/table.hpp"

namespace drhw {

void write_dot(std::ostream& os, const SubtaskGraph& graph) {
  os << "digraph \"" << graph.name() << "\" {\n";
  os << "  rankdir=TB;\n";
  for (std::size_t v = 0; v < graph.size(); ++v) {
    const auto id = static_cast<SubtaskId>(v);
    const Subtask& s = graph.subtask(id);
    os << "  n" << v << " [label=\"" << s.name << "\\n"
       << fmt_ms(s.exec_time) << " ms\" shape="
       << (s.resource == Resource::drhw ? "box" : "ellipse") << "];\n";
  }
  for (std::size_t v = 0; v < graph.size(); ++v) {
    for (SubtaskId succ : graph.successors(static_cast<SubtaskId>(v)))
      os << "  n" << v << " -> n" << succ << ";\n";
  }
  os << "}\n";
}

}  // namespace drhw

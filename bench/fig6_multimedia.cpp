// Regenerates Figure 6 of the paper: reconfiguration overhead of the
// multimedia task set under dynamic behaviour (1000 iterations, random
// application mix) as a function of the DRHW tile count (8..16), for the
// run-time heuristic [7], run-time + inter-task, and the hybrid heuristic.
// The two baselines quoted in the text (no prefetch: 23%; design-time
// optimal prefetch: 7%) are printed alongside.
//
// Replacement policy: LRU — chosen because it reproduces the paper's
// "<20% of the subtasks reused (for 8 tiles)". The replacement ablation
// bench sweeps the other policies.

#include <iostream>

#include "sim/workloads.hpp"
#include "util/table.hpp"

int main() {
  using namespace drhw;
  constexpr int k_iterations = 1000;
  constexpr std::uint64_t k_seed = 2005;

  std::cout << "Figure 6 — overhead vs DRHW tiles, multimedia set, "
            << k_iterations << " random iterations\n\n";
  TablePrinter table({"tiles", "no-prefetch", "design-time", "run-time",
                      "run-time+inter-task", "hybrid", "reuse%(run-time)"});

  for (int tiles = 8; tiles <= 16; ++tiles) {
    const auto platform = virtex2_platform(tiles);
    const auto workload = make_multimedia_workload(platform);
    const auto sampler = multimedia_sampler(*workload);

    double overhead[5] = {0, 0, 0, 0, 0};
    double reuse_rt = 0;
    const Approach approaches[5] = {
        Approach::no_prefetch, Approach::design_time_prefetch,
        Approach::runtime_heuristic, Approach::runtime_intertask,
        Approach::hybrid};
    for (int a = 0; a < 5; ++a) {
      SimOptions opt;
      opt.platform = platform;
      opt.approach = approaches[a];
      opt.replacement = ReplacementPolicy::lru;
      opt.seed = k_seed;
      opt.iterations = k_iterations;
      const auto report = run_simulation(opt, sampler);
      overhead[a] = report.overhead_pct;
      if (approaches[a] == Approach::runtime_heuristic)
        reuse_rt = report.reuse_pct;
    }
    table.add_row({std::to_string(tiles), fmt_pct(overhead[0]),
                   fmt_pct(overhead[1]), fmt_pct(overhead[2], 2),
                   fmt_pct(overhead[3], 2), fmt_pct(overhead[4], 2),
                   fmt_pct(reuse_rt)});
  }
  table.print(std::cout);

  std::cout
      << "\npaper reference: no-prefetch 23%, design-time optimal 7%,\n"
         "run-time ~3% at 8 tiles (with <20% reuse), run-time+inter-task\n"
         "and hybrid at most 1.3% (>=95% of the original overhead hidden);\n"
         "run-time+inter-task slightly better than hybrid.\n";
  return 0;
}

// drhw_lint fixture: malformed directives are themselves findings — a typo
// must never silently disable a rule. Never compiled.
#include <unordered_map>

namespace fixture {

struct Counters {
  std::unordered_map<int, long> hits_;

  long reasonless() const {
    long sum = 0;
    // A bare allow() without ': reason' is rejected AND does not suppress:
    // drhw-lint: expect(bad-suppression)
    // drhw-lint: allow(unordered-iteration)
    // drhw-lint: expect(unordered-iteration)
    for (const auto& kv : hits_) sum += kv.second;
    return sum;
  }

  long unknown_rule() const {
    long sum = 0;
    // drhw-lint: expect(bad-suppression)
    // drhw-lint: allow(no-such-rule: whatever)
    // drhw-lint: expect(unordered-iteration)
    for (const auto& kv : hits_) sum += kv.second;
    return sum;
  }
};

}  // namespace fixture

// Unit tests for the tile-pool subsystem: admission policies (FIFO
// head-of-line, bounded backfill, windowed best-fit reordering), contiguous
// allocation with placement-aware block selection, the defragmentation
// planner, prefetch reservations, and the fragmentation metric.

#include <gtest/gtest.h>

#include <vector>

#include "pool/tile_pool.hpp"
#include "util/check.hpp"

namespace drhw {
namespace {

PoolOptions contiguous_options(AdmissionPolicy policy =
                                   AdmissionPolicy::fifo_hol,
                               bool defrag = false) {
  PoolOptions options;
  options.admission = policy;
  options.contiguous = true;
  options.defrag = defrag;
  return options;
}

/// Marks `job` holding exactly `tiles` (must be free), via the queue.
void force_occupy(TilePoolManager& pool, std::int32_t job,
                  const std::vector<PhysTileId>& tiles, time_us now) {
  pool.enqueue(job, static_cast<int>(tiles.size()), now);
  pool.occupy(job, tiles, now);
}

TEST(PoolOptions, ValidatesKnobs) {
  PoolOptions options;
  EXPECT_NO_THROW(options.validate());
  options.reorder_window = 0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options.reorder_window = 4;
  options.max_bypass = -1;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options.max_bypass = 8;
  options.defrag = true;  // defrag without contiguity is meaningless
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options.contiguous = true;
  EXPECT_NO_THROW(options.validate());
}

TEST(AdmissionPolicyNames, RoundTrip) {
  for (AdmissionPolicy policy :
       {AdmissionPolicy::fifo_hol, AdmissionPolicy::backfill_bypass,
        AdmissionPolicy::window_reorder})
    EXPECT_EQ(admission_policy_from_string(to_string(policy)), policy);
  EXPECT_THROW(admission_policy_from_string("nope"), std::invalid_argument);
}

TEST(TilePool, FifoAdmitsInArrivalOrderAndBlocksOnTheHead) {
  TilePoolManager pool(4, PoolOptions{});
  EXPECT_EQ(pool.select(0), -1);  // empty queue
  pool.enqueue(10, 3, 0);
  pool.enqueue(11, 1, 1);
  EXPECT_EQ(pool.select(1), 10);
  pool.occupy(10, {0, 1, 2}, 1);
  // One tile free, head (11) needs one: admissible.
  EXPECT_EQ(pool.select(1), 11);
  pool.occupy(11, {3}, 1);
  pool.enqueue(12, 1, 2);
  EXPECT_EQ(pool.select(2), -1);  // pool full
  pool.release(10, 5);
  EXPECT_EQ(pool.free_count(), 3);
  EXPECT_EQ(pool.select(5), 12);
  EXPECT_EQ(pool.queue_skips(), 0);  // FIFO never overtakes
}

TEST(TilePool, FifoHeadOfLineBlocksSmallerFollowers) {
  TilePoolManager pool(4, PoolOptions{});
  force_occupy(pool, 1, {0, 1, 2}, 0);
  pool.enqueue(2, 3, 1);  // blocked: only one tile free
  pool.enqueue(3, 1, 2);  // would fit, but FIFO never bypasses
  EXPECT_EQ(pool.select(2), -1);
}

TEST(TilePool, BackfillLetsSmallerInstancesBypassABlockedHead) {
  PoolOptions options;
  options.admission = AdmissionPolicy::backfill_bypass;
  TilePoolManager pool(4, options);
  force_occupy(pool, 1, {0, 1, 2}, 0);
  pool.enqueue(2, 3, 1);  // blocked head
  pool.enqueue(3, 3, 2);  // not smaller than the head: may not bypass
  pool.enqueue(4, 1, 3);  // smaller and fits
  EXPECT_EQ(pool.select(3), 4);
  pool.occupy(4, {3}, 3);
  EXPECT_EQ(pool.queue_skips(), 2);  // overtook jobs 2 and 3
}

TEST(TilePool, BackfillStarvationBoundProtectsTheHead) {
  PoolOptions options;
  options.admission = AdmissionPolicy::backfill_bypass;
  options.max_bypass = 2;
  TilePoolManager pool(4, options);
  force_occupy(pool, 1, {0, 1, 2}, 0);
  pool.enqueue(2, 3, 1);  // blocked head
  for (std::int32_t job = 3; job <= 4; ++job) {
    pool.enqueue(job, 1, job);
    ASSERT_EQ(pool.select(job), job);
    pool.occupy(job, {3}, job);
    pool.release(job, job);
  }
  // The head has been overtaken max_bypass times: now only it may go.
  pool.enqueue(5, 1, 5);
  EXPECT_EQ(pool.select(5), -1);
  pool.release(1, 6);
  EXPECT_EQ(pool.select(6), 2);  // head admitted as soon as it fits
}

TEST(TilePool, WindowReorderPicksBestFitWithinTheWindow) {
  PoolOptions options;
  options.admission = AdmissionPolicy::window_reorder;
  options.reorder_window = 3;
  TilePoolManager pool(6, options);
  force_occupy(pool, 1, {0, 1, 2, 3}, 0);
  pool.enqueue(2, 4, 1);  // blocked head (4 > 2 free)
  pool.enqueue(3, 1, 2);
  pool.enqueue(4, 2, 3);  // best fit: largest that fits
  pool.enqueue(5, 2, 4);  // outside pick: same size but later
  EXPECT_EQ(pool.select(4), 4);
  pool.occupy(4, {4, 5}, 4);
  // Beyond the window nothing is considered.
  pool.release(4, 5);
  PoolOptions tight = options;
  tight.reorder_window = 1;
  TilePoolManager head_only(6, tight);
  force_occupy(head_only, 1, {0, 1, 2, 3}, 0);
  head_only.enqueue(2, 4, 1);
  head_only.enqueue(3, 1, 2);  // fits, but outside the window of 1
  EXPECT_EQ(head_only.select(2), -1);
}

TEST(TilePool, ContiguousAdmissionNeedsARunNotJustACount) {
  TilePoolManager pool(6, contiguous_options());
  // Hold tiles 1 and 4: free tiles 0, 2, 3, 5 -> largest run is 2.
  force_occupy(pool, 1, {1}, 0);
  force_occupy(pool, 2, {4}, 0);
  EXPECT_EQ(pool.free_count(), 4);
  EXPECT_EQ(pool.largest_free_block(), 2);
  pool.enqueue(3, 3, 1);
  EXPECT_EQ(pool.select(1), -1);  // three scattered tiles do not fit
  EXPECT_TRUE(pool.head_fragmentation_blocked());
  pool.release(2, 2);
  EXPECT_EQ(pool.largest_free_block(), 4);
  EXPECT_EQ(pool.select(2), 3);
  const auto offer = pool.offer(3, {});
  ASSERT_EQ(offer.size(), 3u);
  for (std::size_t i = 1; i < offer.size(); ++i)
    EXPECT_EQ(offer[i], offer[i - 1] + 1) << "offer must be contiguous";
}

TEST(TilePool, ContiguousOfferPrefersBlocksWithWantedConfigs) {
  TilePoolManager pool(6, contiguous_options());
  // Two candidate blocks of size 2 around a held middle pair; the right
  // one has a wanted configuration cached.
  force_occupy(pool, 1, {2, 3}, 0);
  pool.store().record_load(4, 77, ms(1), 1.0);
  pool.enqueue(2, 2, 2);
  const auto offer = pool.offer(2, {77});
  ASSERT_EQ(offer.size(), 2u);
  EXPECT_EQ(offer[0], 4);
  EXPECT_EQ(offer[1], 5);
  // Without the wanted config the leftmost block wins.
  const auto plain = pool.offer(2, {});
  EXPECT_EQ(plain[0], 0);
}

TEST(TilePool, PrefetchVictimPrefersEmptyThenLowValueThenLru) {
  TilePoolManager pool(4, PoolOptions{});
  const std::vector<char> none(4, 0);
  pool.store().record_load(0, 1, ms(1), 5.0);
  pool.store().record_load(1, 2, ms(2), 1.0);
  // Tile 2 and 3 empty -> first empty wins.
  EXPECT_EQ(pool.prefetch_victim(none), 2);
  pool.store().record_load(2, 3, ms(3), 9.0);
  pool.store().record_load(3, 4, ms(4), 9.0);
  // No empties: lowest value (tile 1).
  EXPECT_EQ(pool.prefetch_victim(none), 1);
  std::vector<char> protect(4, 0);
  protect[1] = 1;
  // Value ties (2 vs 3) break by least recently used.
  EXPECT_EQ(pool.prefetch_victim(protect), 0);
  protect[0] = 1;
  EXPECT_EQ(pool.prefetch_victim(protect), 2);
}

TEST(TilePool, PrefetchReservationLifecycle) {
  TilePoolManager pool(2, PoolOptions{});
  pool.reserve(1, 42, 3.0, ms(1));
  EXPECT_TRUE(pool.reserved(1));
  EXPECT_EQ(pool.free_count(), 1);
  EXPECT_EQ(pool.finish_prefetch(1, ms(5)), 42);
  EXPECT_FALSE(pool.reserved(1));
  EXPECT_EQ(pool.store().config_on(1), 42);
  EXPECT_EQ(pool.store().last_used(1), ms(5));
  EXPECT_EQ(pool.free_count(), 2);  // cached configs stay free
}

TEST(TilePool, DefragPlansAMigrationThatOpensTheNeededRun) {
  TilePoolManager pool(6, contiguous_options(AdmissionPolicy::fifo_hol,
                                             /*defrag=*/true));
  // Job 1 holds tiles 1 and 4 with loaded configs; free = {0,2,3,5}.
  force_occupy(pool, 1, {1, 4}, 0);
  pool.store().record_load(1, 10, ms(1), 1.0);
  pool.store().record_load(4, 11, ms(1), 1.0);
  pool.enqueue(2, 3, 2);
  ASSERT_TRUE(pool.head_fragmentation_blocked());
  const std::vector<char> movable(6, 1);
  const auto plan = pool.plan_defrag(movable);
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->needs_port());
  EXPECT_EQ(plan->owner, 1);
  pool.begin_migration(*plan, ms(2));
  EXPECT_TRUE(pool.migration_in_flight());
  EXPECT_TRUE(pool.migrating(plan->src));
  EXPECT_TRUE(pool.finish_migration(*plan, ms(6)));
  EXPECT_FALSE(pool.migration_in_flight());
  // Ownership moved, the configuration travelled, the source keeps a
  // cached copy, and the head now fits.
  EXPECT_TRUE(pool.held(plan->dst));
  EXPECT_EQ(pool.owner(plan->dst), 1);
  EXPECT_FALSE(pool.held(plan->src));
  EXPECT_EQ(pool.store().config_on(plan->dst),
            pool.store().config_on(plan->src));
  EXPECT_GE(pool.largest_free_block(), 3);
  EXPECT_EQ(pool.select(ms(6)), 2);
  EXPECT_EQ(pool.defrag_moves(), 1);
}

TEST(TilePool, DefragRemapsEmptyHeldTilesForFree) {
  TilePoolManager pool(6, contiguous_options(AdmissionPolicy::fifo_hol,
                                             /*defrag=*/true));
  force_occupy(pool, 1, {1, 4}, 0);  // held but never loaded -> empty
  pool.enqueue(2, 3, 1);
  const std::vector<char> movable(6, 1);
  const auto plan = pool.plan_defrag(movable);
  ASSERT_TRUE(plan.has_value());
  EXPECT_FALSE(plan->needs_port());  // nothing to copy
  pool.apply_remap(*plan, ms(1));
  EXPECT_EQ(pool.owner(plan->dst), 1);
  EXPECT_FALSE(pool.held(plan->src));
  EXPECT_EQ(pool.defrag_moves(), 1);
}

TEST(TilePool, DefragAbortsTransferWhenTheSourceChangedMidFlight) {
  TilePoolManager pool(6, contiguous_options(AdmissionPolicy::fifo_hol,
                                             /*defrag=*/true));
  force_occupy(pool, 1, {1, 4}, 0);
  pool.store().record_load(1, 10, ms(1), 1.0);
  pool.store().record_load(4, 11, ms(1), 1.0);
  pool.enqueue(2, 3, 2);
  const std::vector<char> movable(6, 1);
  const auto plan = pool.plan_defrag(movable);
  ASSERT_TRUE(plan.has_value());
  pool.begin_migration(*plan, ms(2));
  // A competing load lands on the source mid-migration.
  pool.store().record_load(plan->src, 99, ms(3), 2.0);
  EXPECT_FALSE(pool.finish_migration(*plan, ms(6)));
  // The owner keeps the (rewritten) source; the destination holds the old
  // configuration as a reusable cached copy on a free tile.
  EXPECT_TRUE(pool.held(plan->src));
  EXPECT_EQ(pool.owner(plan->src), 1);
  EXPECT_FALSE(pool.held(plan->dst));
  EXPECT_EQ(pool.store().config_on(plan->dst), plan->config);
}

TEST(TilePool, MigrationSourceIsNotFreeEvenAfterOwnerRetires) {
  TilePoolManager pool(4, contiguous_options(AdmissionPolicy::fifo_hol,
                                             /*defrag=*/true));
  force_occupy(pool, 1, {1}, 0);
  pool.store().record_load(1, 10, ms(1), 1.0);
  pool.enqueue(2, 3, 1);  // fragmentation-blocked head (free {0, 2, 3})
  const std::vector<char> movable(4, 1);
  const auto plan = pool.plan_defrag(movable);
  ASSERT_TRUE(plan.has_value());
  pool.begin_migration(*plan, ms(2));
  pool.release(1, ms(3));  // owner retires mid-migration
  // The source tile must not be handed to a new instance while the copy
  // is in flight (its executions would gate on a wakeup that never comes),
  // so the pool still cannot fit the head.
  EXPECT_EQ(pool.free_count(), 2);  // src + dst excluded
  EXPECT_EQ(pool.select(ms(3)), -1);
  // Completion aborts the transfer (owner gone) and frees everything.
  EXPECT_FALSE(pool.finish_migration(*plan, ms(6)));
  EXPECT_EQ(pool.free_count(), 4);
  EXPECT_EQ(pool.select(ms(6)), 2);
}

TEST(TilePool, TwoMigrationsRunConcurrentlyWithIndependentCommits) {
  // Multi-port defragmentation: planning continues while a migration is in
  // flight, so a spare port can carry a second relocation out of the same
  // sticky window. Each move commits (or aborts) on its own.
  TilePoolManager pool(12, contiguous_options(AdmissionPolicy::fifo_hol,
                                              /*defrag=*/true));
  force_occupy(pool, 1, {2, 5, 8, 11}, 0);
  pool.store().record_load(2, 10, ms(1), 1.0);
  pool.store().record_load(5, 11, ms(1), 1.0);
  pool.store().record_load(8, 12, ms(1), 1.0);
  pool.store().record_load(11, 13, ms(1), 1.0);
  // Free tiles come in runs of two, so the 6-wide head is blocked purely
  // by fragmentation, every 6-wide window holds two movable blockers
  // (clearing one takes two relocations), and enough slack remains for
  // both moves to be in flight without starving the head's tile budget.
  pool.enqueue(2, 6, 2);
  ASSERT_TRUE(pool.head_fragmentation_blocked());
  const std::vector<char> movable(12, 1);

  const auto first = pool.plan_defrag(movable);
  ASSERT_TRUE(first.has_value());
  pool.begin_migration(*first, ms(2));
  // The second plan must pick a different source (the first is already
  // being cleared) and a different destination (the first's is reserved).
  const auto second = pool.plan_defrag(movable);
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(second->src, first->src);
  EXPECT_NE(second->dst, first->dst);
  pool.begin_migration(*second, ms(3));

  EXPECT_EQ(pool.migrations_in_flight(), 2);
  EXPECT_TRUE(pool.migrating(first->src));
  EXPECT_TRUE(pool.migrating(second->src));
  // Both sources and both destinations are excluded from every free view.
  EXPECT_EQ(pool.free_count(), 6);
  // With both window blockers in flight the sticky window is held — no
  // third plan until a move lands.
  EXPECT_FALSE(pool.plan_defrag(movable).has_value());

  // Moves land out of order; each transfers independently.
  EXPECT_TRUE(pool.finish_migration(*second, ms(6)));
  EXPECT_EQ(pool.migrations_in_flight(), 1);
  EXPECT_TRUE(pool.migrating(first->src));
  EXPECT_FALSE(pool.migrating(second->src));
  EXPECT_TRUE(pool.finish_migration(*first, ms(7)));
  EXPECT_EQ(pool.migrations_in_flight(), 0);
  EXPECT_EQ(pool.defrag_moves(), 2);
  // The window is clear: the head admits.
  EXPECT_GE(pool.largest_free_block(), 6);
  EXPECT_EQ(pool.select(ms(7)), 2);
}

TEST(TilePool, ConcurrentMigrationsAbortIndependently) {
  TilePoolManager pool(12, contiguous_options(AdmissionPolicy::fifo_hol,
                                              /*defrag=*/true));
  force_occupy(pool, 1, {2, 5, 8, 11}, 0);
  pool.store().record_load(2, 10, ms(1), 1.0);
  pool.store().record_load(5, 11, ms(1), 1.0);
  pool.store().record_load(8, 12, ms(1), 1.0);
  pool.store().record_load(11, 13, ms(1), 1.0);
  pool.enqueue(2, 6, 2);
  const std::vector<char> movable(12, 1);
  const auto first = pool.plan_defrag(movable);
  ASSERT_TRUE(first.has_value());
  pool.begin_migration(*first, ms(2));
  const auto second = pool.plan_defrag(movable);
  ASSERT_TRUE(second.has_value());
  pool.begin_migration(*second, ms(3));

  // A competing load overwrites the *first* source mid-flight: that move
  // aborts (cached copy at the destination), the other still transfers.
  pool.store().record_load(first->src, 99, ms(4), 2.0);
  EXPECT_FALSE(pool.finish_migration(*first, ms(6)));
  EXPECT_TRUE(pool.held(first->src));
  EXPECT_FALSE(pool.held(first->dst));
  EXPECT_TRUE(pool.finish_migration(*second, ms(7)));
  EXPECT_TRUE(pool.held(second->dst));
  EXPECT_FALSE(pool.held(second->src));
}

TEST(TilePool, FragmentationMetricIsTimeWeighted) {
  TilePoolManager pool(4, PoolOptions{});
  // [0, 10ms): everything free -> fragmentation 0.
  // Hold tile 1 at 10ms: free {0, 2, 3}, largest run 2 -> 33.33%.
  force_occupy(pool, 1, {1}, ms(10));
  EXPECT_NEAR(pool.fragmentation_pct(), 100.0 / 3.0, 1e-9);
  // Over [0, 20ms) the mean is half of the snapshot.
  EXPECT_NEAR(pool.mean_fragmentation_pct(ms(20)), 100.0 / 6.0, 1e-9);
  EXPECT_EQ(pool.mean_fragmentation_pct(0), 0.0);
}

TEST(TilePool, EnqueueRejectsOversizedInstances) {
  TilePoolManager pool(2, PoolOptions{});
  EXPECT_THROW(pool.enqueue(1, 3, 0), InternalError);
}

TEST(TilePool, CheckpointLifecycleFreesTilesButKeepsConfigsCached) {
  // Preemptive checkpointing: a victim's held tiles go migrating (excluded
  // from every free view) during the writeout, then free with the
  // configurations still cached, so a re-admitted victim degrades its
  // reloads to cached hits.
  TilePoolManager pool(4, PoolOptions{});
  force_occupy(pool, 1, {0, 1}, 0);
  pool.store().record_load(0, 10, ms(1), 1.0);
  pool.store().record_load(1, 11, ms(1), 1.0);

  pool.begin_checkpoint(0);
  pool.begin_checkpoint(1);
  EXPECT_TRUE(pool.migrating(0));
  EXPECT_TRUE(pool.migrating(1));
  EXPECT_EQ(pool.migrations_in_flight(), 2);
  EXPECT_EQ(pool.free_count(), 2);  // checkpointing tiles are not free

  pool.finish_checkpoint(0, ms(5));
  pool.finish_checkpoint(1, ms(5));
  EXPECT_EQ(pool.migrations_in_flight(), 0);
  EXPECT_FALSE(pool.held(0));
  EXPECT_FALSE(pool.held(1));
  EXPECT_EQ(pool.owner(0), -1);
  EXPECT_EQ(pool.free_count(), 4);
  // The configurations stay as reusable cached copies.
  EXPECT_EQ(pool.store().config_on(0), 10);
  EXPECT_EQ(pool.store().config_on(1), 11);

  // Resume: the victim re-admits onto the same tiles and its loads are
  // cached hits (config_on matches what it needs).
  pool.enqueue(1, 2, ms(6));
  EXPECT_EQ(pool.select(ms(6)), 1);
  pool.occupy(1, {0, 1}, ms(6));
  EXPECT_EQ(pool.store().config_on(0), 10);
}

TEST(TilePool, CheckpointAbortRestoresTheVictim) {
  TilePoolManager pool(4, PoolOptions{});
  force_occupy(pool, 1, {0}, 0);
  pool.store().record_load(0, 10, ms(1), 1.0);
  pool.begin_checkpoint(0);
  EXPECT_TRUE(pool.migrating(0));
  pool.abort_checkpoint(0);
  EXPECT_FALSE(pool.migrating(0));
  EXPECT_EQ(pool.migrations_in_flight(), 0);
  EXPECT_TRUE(pool.held(0));
  EXPECT_EQ(pool.owner(0), 1);
}

TEST(TilePool, SelectUrgentPicksTheMostUrgentFittingInstance) {
  TilePoolManager pool(4, PoolOptions{});
  force_occupy(pool, 1, {0, 1, 2}, 0);
  pool.enqueue(10, 1, 1);  // urgency 30
  pool.enqueue(11, 1, 2);  // urgency 10 (most urgent)
  pool.enqueue(12, 3, 3);  // urgency 5 but does not fit
  const auto urgency = [](std::int32_t job) -> long long {
    return job == 10 ? 30 : job == 11 ? 10 : 5;
  };
  EXPECT_EQ(pool.select_urgent(3, urgency), 11);
  pool.occupy(11, {3}, 3);
  EXPECT_EQ(pool.queue_skips(), 1);  // overtook job 10
  EXPECT_EQ(pool.select_urgent(4, urgency), -1);  // nothing fits
}

TEST(TilePool, SelectUrgentHonoursTheStarvationBound) {
  PoolOptions options;
  options.max_bypass = 2;
  TilePoolManager pool(4, options);
  force_occupy(pool, 1, {0, 1, 2}, 0);
  pool.enqueue(10, 1, 1);  // head, least urgent
  const auto urgency = [](std::int32_t job) -> long long {
    return job == 10 ? 100 : job;
  };
  for (std::int32_t job = 20; job <= 21; ++job) {
    pool.enqueue(job, 1, job);
    ASSERT_EQ(pool.select_urgent(job, urgency), job);
    pool.occupy(job, {3}, job);
    pool.release(job, job);
  }
  // The head has been bypassed max_bypass times: now only it may go.
  pool.enqueue(22, 1, 22);
  EXPECT_EQ(pool.select_urgent(23, urgency), 10);
}

}  // namespace
}  // namespace drhw

#include "sim/event_queue.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/check.hpp"

namespace drhw {

namespace {

/// Smallest bucket array; below this the calendar never shrinks.
constexpr std::size_t k_min_buckets = 16;
/// Day-width exponent ceiling (2^40 us ≈ 13 days of simulated time).
constexpr unsigned k_max_shift = 40;

}  // namespace

const char* to_string(QueueBackend backend) {
  switch (backend) {
    case QueueBackend::calendar:
      return "calendar";
    case QueueBackend::heap:
      return "heap";
  }
  return "?";
}

QueueBackend queue_backend_from_string(const std::string& text) {
  if (text == "calendar") return QueueBackend::calendar;
  if (text == "heap") return QueueBackend::heap;
  throw std::invalid_argument("unknown queue backend '" + text +
                              "' (use calendar or heap)");
}

EventQueue::EventQueue(QueueBackend backend, PerfCounters* perf)
    : backend_(backend), perf_(perf) {
  if (backend_ == QueueBackend::calendar) {
    buckets_.assign(k_min_buckets, {});
    mask_ = k_min_buckets - 1;
  } else {
    heap_.reserve(1024);
  }
}

void EventQueue::push(time_us time, std::int32_t kind, std::int32_t job,
                      SubtaskId subtask) {
  DRHW_CHECK_GE_MSG(time, 0, "events cannot be scheduled before t = 0");
  const Event ev{time, kind, job, subtask, next_seq_++};
  if (backend_ == QueueBackend::calendar)
    calendar_push(ev);
  else
    heap_push(ev);
  ++size_;
  if (perf_) perf_->note_push(kind, size_);
}

Event EventQueue::pop() {
  DRHW_CHECK_GT_MSG(size_, 0u, "pop from an empty event queue");
  const Event ev = backend_ == QueueBackend::calendar ? calendar_pop()
                                                      : heap_pop();
  --size_;
  DRHW_CHECK_GE_MSG(ev.time, last_pop_,
                    "event queue popped backwards in time");
  last_pop_ = ev.time;
  if (perf_) perf_->note_pop();
  return ev;
}

// --- binary heap ------------------------------------------------------------

void EventQueue::heap_push(const Event& ev) {
  note_grow(heap_);
  heap_.push_back(ev);
  std::push_heap(heap_.begin(), heap_.end(), event_after);
}

Event EventQueue::heap_pop() {
  std::pop_heap(heap_.begin(), heap_.end(), event_after);
  const Event ev = heap_.back();
  heap_.pop_back();
  return ev;
}

// --- calendar queue ---------------------------------------------------------
//
// Days are 2^shift_ microseconds wide; day d of the year maps to bucket
// d & mask_. Each bucket keeps its events sorted descending under
// event_after(), so back() is the bucket's minimum. The cursor walks
// (current_, day_end_) day by day; an event is popped only when it lies in
// the cursor's day, which is exactly Brown's "current year" guard. A push
// behind the cursor's day rewinds the cursor (the cursor only ever skips
// days it proved empty, so the rewound event is the new minimum of the
// skipped region).

void EventQueue::calendar_push(const Event& ev) {
  if (size_ == 0) {
    current_ = bucket_of(ev.time);
    day_end_ = day_end_of(ev.time);
  } else if (ev.time < day_end_ - (time_us{1} << shift_)) {
    current_ = bucket_of(ev.time);
    day_end_ = day_end_of(ev.time);
  }
  std::vector<Event>& bucket = buckets_[bucket_of(ev.time)];
  note_grow(bucket);
  bucket.insert(
      std::lower_bound(bucket.begin(), bucket.end(), ev, event_after), ev);
  if (size_ + 1 > 2 * buckets_.size()) calendar_rebuild(2 * buckets_.size());
}

Event EventQueue::calendar_pop() {
  for (std::size_t scanned = 0;;) {
    std::vector<Event>& bucket = buckets_[current_];
    if (!bucket.empty() && bucket.back().time < day_end_) {
      const Event ev = bucket.back();
      bucket.pop_back();
      if (size_ - 1 < buckets_.size() / 4 && buckets_.size() > k_min_buckets)
        calendar_rebuild(buckets_.size() / 2);
      return ev;
    }
    current_ = (current_ + 1) & mask_;
    day_end_ += time_us{1} << shift_;
    if (++scanned == buckets_.size()) {
      calendar_seek_min();
      scanned = 0;
    }
  }
}

void EventQueue::calendar_seek_min() {
  const Event* min = nullptr;
  for (const std::vector<Event>& bucket : buckets_) {
    if (bucket.empty()) continue;
    if (min == nullptr || event_after(*min, bucket.back()))
      min = &bucket.back();
  }
  DRHW_CHECK_MSG(min != nullptr, "calendar cursor lost its events");
  current_ = bucket_of(min->time);
  day_end_ = day_end_of(min->time);
}

void EventQueue::calendar_rebuild(std::size_t buckets) {
  std::vector<Event> all;
  all.reserve(size_ + 1);
  time_us lo = 0, hi = 0;
  bool first = true;
  for (std::vector<Event>& bucket : buckets_) {
    for (const Event& ev : bucket) {
      if (first || ev.time < lo) lo = ev.time;
      if (first || ev.time > hi) hi = ev.time;
      first = false;
      all.push_back(ev);
    }
    bucket.clear();
  }
  // Brown's width rule: roughly three mean inter-event gaps per day, so a
  // day holds a handful of events. Degenerate spans collapse to width 1.
  if (!all.empty()) {
    const auto span = static_cast<std::uint64_t>(hi - lo);
    const auto width =
        std::max<std::uint64_t>(1, 3 * span / all.size());
    shift_ = static_cast<unsigned>(log2_bucket(width));
    if (shift_ > k_max_shift) shift_ = k_max_shift;
  }
  buckets_.assign(buckets, {});
  mask_ = buckets - 1;
  for (const Event& ev : all) {
    std::vector<Event>& bucket = buckets_[bucket_of(ev.time)];
    bucket.push_back(ev);
  }
  for (std::vector<Event>& bucket : buckets_)
    std::sort(bucket.begin(), bucket.end(), event_after);
  if (!all.empty()) calendar_seek_min();
  if (perf_) {
    ++perf_->calendar_resizes;
    perf_->note_alloc();
  }
}

}  // namespace drhw

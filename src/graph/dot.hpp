#pragma once

/// \file dot.hpp
/// Graphviz export of subtask graphs for documentation and debugging.

#include <iosfwd>

#include "graph/subtask_graph.hpp"

namespace drhw {

/// Writes the graph in Graphviz DOT format. DRHW subtasks render as boxes,
/// ISP subtasks as ellipses; labels carry name and exec time in ms.
void write_dot(std::ostream& os, const SubtaskGraph& graph);

}  // namespace drhw

#pragma once

/// \file list_scheduler.hpp
/// The design-time scheduler that produces the initial subtask schedule the
/// prefetch modules start from. It is a classic priority list scheduler:
/// ready subtasks are dispatched in descending ALAP-weight order onto the
/// unit (tile/ISP) that allows the earliest start, **ignoring
/// reconfiguration latency** — exactly the input contract of Section 3.

#include "graph/subtask_graph.hpp"
#include "platform/platform.hpp"
#include "schedule/placement.hpp"

namespace drhw {

/// Schedules `graph` onto at most `tiles` virtual DRHW tiles and `isps` ISP
/// units. Ties between equally early units are broken toward the unit that
/// has been idle longest (and then the lowest unit index), which spreads
/// subtasks over tiles — this maximises the prefetcher's room to overlap
/// loads with computation and matches the placements in the paper's figures.
///
/// Throws std::invalid_argument if `tiles` < 1 while DRHW subtasks exist, or
/// `isps` < 1 while ISP subtasks exist.
Placement list_schedule(const SubtaskGraph& graph, int tiles, int isps = 1);

/// Communication-aware variant: ready times include the platform's ICN
/// latencies (per-hop mesh cost, ISP bridge), so the scheduler trades
/// parallelism against locality. With the default ideal interconnect this
/// is identical to list_schedule().
Placement list_schedule_icn(const SubtaskGraph& graph,
                            const PlatformConfig& platform);

}  // namespace drhw

// Tests for the hybrid run-time phase: initialization phase, load
// cancellation, and its end-to-end guarantees.

#include <gtest/gtest.h>

#include "apps/multimedia.hpp"
#include "graph/generators.hpp"
#include "prefetch/hybrid.hpp"
#include "util/check.hpp"
#include "schedule/list_scheduler.hpp"

namespace drhw {
namespace {

struct Prepared {
  SubtaskGraph graph;
  Placement placement;
  HybridSchedule design;
  PlatformConfig platform = virtex2_platform(8);
};

Prepared prepare_jpeg() {
  ConfigSpace cs;
  auto task = make_jpeg_decoder(cs);
  Prepared p{std::move(task.scenarios[0]), {}, {}, virtex2_platform(8)};
  p.placement = list_schedule(p.graph, 8);
  p.design = compute_hybrid_schedule(p.graph, p.placement, p.platform);
  return p;
}

TEST(HybridRuntime, AllCriticalResidentMeansZeroOverhead) {
  const auto p = prepare_jpeg();
  std::vector<bool> resident(p.graph.size(), false);
  for (SubtaskId s : p.design.critical)
    resident[static_cast<std::size_t>(s)] = true;
  const auto out =
      hybrid_runtime(p.graph, p.placement, p.platform, p.design, resident);
  EXPECT_TRUE(out.init_loads.empty());
  EXPECT_EQ(out.init_duration, 0);
  EXPECT_EQ(out.total_makespan, p.design.ideal_makespan);
  EXPECT_EQ(out.cancelled_loads, 0);
}

TEST(HybridRuntime, NothingResidentPaysExactlyInitPhase) {
  const auto p = prepare_jpeg();
  const std::vector<bool> resident(p.graph.size(), false);
  const auto out =
      hybrid_runtime(p.graph, p.placement, p.platform, p.design, resident);
  EXPECT_EQ(out.init_loads.size(), p.design.critical.size());
  EXPECT_EQ(out.init_duration,
            static_cast<time_us>(p.design.critical.size()) * ms(4));
  // The stored schedule itself hides everything, so the only overhead is
  // the initialization phase.
  EXPECT_EQ(out.total_makespan,
            p.design.ideal_makespan + out.init_duration);
}

TEST(HybridRuntime, InitPhaseOverlapsLoadsAcrossReconfigurationPorts) {
  // The initialization loads dispatch onto the earliest-free port in the
  // pre-decided order: with one port the phase is the serial sum, with P
  // ports it is ceil(n / P) * latency (uniform bitstreams), and the
  // per-load completion times interleave accordingly. A chain whose
  // executions are much shorter than the 4 ms load makes every subtask
  // critical, so the init phase has several loads to overlap.
  Rng rng(3);
  const SubtaskGraph graph = make_chain_graph(4, ms(1), ms(2), rng);
  Prepared p{graph, {}, {}, virtex2_platform(8)};
  p.placement = list_schedule(p.graph, 8);
  p.design = compute_hybrid_schedule(p.graph, p.placement, p.platform);
  const std::vector<bool> resident(p.graph.size(), false);
  const auto serial =
      hybrid_runtime(p.graph, p.placement, p.platform, p.design, resident);
  const auto n = static_cast<time_us>(serial.init_loads.size());
  ASSERT_GE(n, 2);
  EXPECT_EQ(serial.init_duration, n * ms(4));
  ASSERT_EQ(serial.init_load_ends.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(serial.init_load_ends.front(), ms(4));
  EXPECT_EQ(serial.init_load_ends.back(), n * ms(4));

  PlatformConfig two_ports = p.platform;
  two_ports.reconfig_ports = 2;
  const auto parallel =
      hybrid_runtime(p.graph, p.placement, two_ports, p.design, resident);
  EXPECT_EQ(parallel.init_loads, serial.init_loads);
  EXPECT_EQ(parallel.init_duration, (n + 1) / 2 * ms(4));
  // First two loads start together on the two ports.
  ASSERT_GE(parallel.init_load_ends.size(), 2u);
  EXPECT_EQ(parallel.init_load_ends[0], ms(4));
  EXPECT_EQ(parallel.init_load_ends[1], ms(4));
  EXPECT_LT(parallel.total_makespan, serial.total_makespan);
}

TEST(HybridRuntime, ResidentNonCriticalLoadIsCancelled) {
  const auto p = prepare_jpeg();
  std::vector<bool> resident(p.graph.size(), false);
  ASSERT_FALSE(p.design.stored_order.empty());
  const SubtaskId cancelled = p.design.stored_order[1];
  resident[static_cast<std::size_t>(cancelled)] = true;
  const auto out =
      hybrid_runtime(p.graph, p.placement, p.platform, p.design, resident);
  EXPECT_EQ(out.cancelled_loads, 1);
  EXPECT_EQ(out.eval.load_start[static_cast<std::size_t>(cancelled)],
            k_no_time);
  // Cancelling never hurts: still ideal + init.
  EXPECT_EQ(out.total_makespan,
            p.design.ideal_makespan + out.init_duration);
}

TEST(HybridRuntime, CancellationPreservesRelativeOrder) {
  const auto p = prepare_jpeg();
  std::vector<bool> resident(p.graph.size(), false);
  resident[static_cast<std::size_t>(p.design.stored_order[0])] = true;
  const auto out =
      hybrid_runtime(p.graph, p.placement, p.platform, p.design, resident);
  // Remaining loads appear in the stored order.
  std::vector<SubtaskId> expected;
  for (SubtaskId s : p.design.stored_order)
    if (!resident[static_cast<std::size_t>(s)]) expected.push_back(s);
  EXPECT_EQ(out.eval.load_order, expected);
}

TEST(HybridRuntime, InitOrderFollowsDesignOrder) {
  ConfigSpace cs;
  auto task = make_mpeg_encoder(cs);
  const auto& g = task.scenarios[0];
  const auto placement = list_schedule(g, 8);
  const auto platform = virtex2_platform(8);
  const auto design = compute_hybrid_schedule(g, placement, platform);
  ASSERT_EQ(design.critical.size(), 2u);
  const std::vector<bool> resident(g.size(), false);
  const auto out = hybrid_runtime(g, placement, platform, design, resident);
  EXPECT_EQ(out.init_loads, design.critical);
}

class HybridMonotonicity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HybridMonotonicity, MoreResidencyNeverHurts) {
  Rng rng(GetParam());
  LayeredGraphParams params;
  params.subtasks = 10;
  const auto g = make_layered_graph(params, rng);
  const auto placement = list_schedule(g, 4);
  const auto platform = virtex2_platform(4);
  const auto design = compute_hybrid_schedule(g, placement, platform);

  std::vector<bool> some(g.size(), false);
  for (std::size_t s = 0; s < g.size(); ++s)
    if (placement.on_drhw(static_cast<SubtaskId>(s)) && rng.next_bool(0.4))
      some[s] = true;
  std::vector<bool> more = some;
  for (std::size_t s = 0; s < g.size(); ++s)
    if (placement.on_drhw(static_cast<SubtaskId>(s)) && rng.next_bool(0.5))
      more[s] = true;

  const auto base =
      hybrid_runtime(g, placement, platform, design, some);
  const auto better =
      hybrid_runtime(g, placement, platform, design, more);
  EXPECT_LE(better.total_makespan, base.total_makespan);
}

TEST_P(HybridMonotonicity, TotalNeverWorseThanInitPlusIdeal) {
  Rng rng(GetParam() * 13 + 5);
  LayeredGraphParams params;
  params.subtasks = 12;
  const auto g = make_layered_graph(params, rng);
  const auto placement = list_schedule(g, 5);
  const auto platform = virtex2_platform(5);
  const auto design = compute_hybrid_schedule(g, placement, platform);
  const std::vector<bool> resident(g.size(), false);
  const auto out = hybrid_runtime(g, placement, platform, design, resident);
  // Stored schedule has zero penalty by construction, so the whole
  // instance costs exactly the initialization phase.
  EXPECT_EQ(out.total_makespan, design.ideal_makespan + out.init_duration);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HybridMonotonicity,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(HybridRuntime, RejectsWrongResidentSize) {
  const auto p = prepare_jpeg();
  const std::vector<bool> tiny(1, false);
  EXPECT_THROW(
      hybrid_runtime(p.graph, p.placement, p.platform, p.design, tiny),
      InternalError);
}

}  // namespace
}  // namespace drhw

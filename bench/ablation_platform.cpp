// Ablation: platform-model extensions beyond the paper — ICN communication
// latency (per-hop mesh cost) and multi-port reconfiguration controllers —
// evaluated on the Table 1 tasks without reuse, like the paper's
// deterministic columns.

#include <iostream>

#include "apps/multimedia.hpp"
#include "prefetch/bnb.hpp"
#include "prefetch/list_prefetch.hpp"
#include "schedule/list_scheduler.hpp"
#include "util/table.hpp"

namespace {

using namespace drhw;

struct Numbers {
  double ideal_ms = 0;
  double on_demand_pct = 0;
  double prefetch_pct = 0;
};

Numbers measure(const std::vector<BenchmarkTask>& tasks,
                const PlatformConfig& platform) {
  Numbers out;
  double ideal = 0, od = 0, pf = 0;
  for (const auto& task : tasks) {
    for (const auto& g : task.scenarios) {
      const auto placement = list_schedule_icn(g, platform);
      ideal += static_cast<double>(placement.ideal_makespan);
      std::vector<bool> needs(g.size(), false);
      for (std::size_t s = 0; s < g.size(); ++s)
        needs[s] = placement.on_drhw(static_cast<SubtaskId>(s));
      LoadPlan demand;
      demand.policy = LoadPolicy::on_demand;
      demand.needs_load = needs;
      od += static_cast<double>(
          evaluate(g, placement, platform, demand).makespan -
          placement.ideal_makespan);
      pf += static_cast<double>(
          list_prefetch(g, placement, platform, needs).makespan -
          placement.ideal_makespan);
    }
  }
  out.ideal_ms = ideal / 1000.0;
  out.on_demand_pct = 100.0 * od / ideal;
  out.prefetch_pct = 100.0 * pf / ideal;
  return out;
}

}  // namespace

int main() {
  using namespace drhw;
  ConfigSpace configs;
  const auto tasks = make_multimedia_taskset(configs);

  std::cout
      << "ICN communication-latency sweep (3x3 mesh, multimedia set, no "
         "reuse).\n"
         "Two initial-schedule styles are compared under the *same* ICN "
         "cost model:\n"
         "  packed  — communication-aware list scheduler (pulls chains "
         "onto one tile),\n"
         "  spread  — communication-oblivious scheduler (one subtask per "
         "tile).\n"
         "Packing minimises communication but removes every prefetch "
         "window: a load\non a shared tile cannot start before the "
         "previous execution finishes.\n\n";
  TablePrinter icn_table({"hop latency", "packed: total", "packed: prefetch",
                          "spread: total", "spread: prefetch"});
  for (const time_us hop : {us(0), us(100), us(250), us(500), ms(1), ms(4)}) {
    PlatformConfig platform = virtex2_platform(9);
    platform.icn.mesh_width = 3;
    platform.icn.hop_latency = hop;
    platform.icn.isp_bridge_latency = hop;

    auto total_with = [&](bool comm_aware) {
      double total = 0, ideal = 0;
      for (const auto& task : tasks)
        for (const auto& g : task.scenarios) {
          const auto placement = comm_aware
                                     ? list_schedule_icn(g, platform)
                                     : list_schedule(g, platform.tiles);
          std::vector<bool> needs(g.size(), false);
          for (std::size_t s = 0; s < g.size(); ++s)
            needs[s] = placement.on_drhw(static_cast<SubtaskId>(s));
          total += static_cast<double>(
              list_prefetch(g, placement, platform, needs).makespan);
          ideal += static_cast<double>(placement.ideal_makespan);
        }
      return std::pair<double, double>(total, 100.0 * (total - ideal) / ideal);
    };
    const auto [packed_total, packed_pct] = total_with(true);
    const auto [spread_total, spread_pct] = total_with(false);
    icn_table.add_row({fmt_ms(hop, 2) + " ms",
                       fmt(packed_total / 1000.0, 1) + " ms",
                       "+" + fmt_pct(packed_pct, 1),
                       fmt(spread_total / 1000.0, 1) + " ms",
                       "+" + fmt_pct(spread_pct, 1)});
  }
  icn_table.print(std::cout);
  std::cout << "\nAs long as a hop costs less than the exposed load latency, "
               "the spread placement\nwins overall even though it pays for "
               "every message — prefetchability beats\nlocality, which is "
               "why the paper's initial schedules use one subtask per "
               "tile.\n\n";

  std::cout << "Reconfiguration-port sweep (multimedia set, no reuse)\n\n";
  TablePrinter port_table({"ports", "on-demand", "prefetch [7]"});
  for (int ports = 1; ports <= 4; ++ports) {
    PlatformConfig platform = virtex2_platform(8);
    platform.reconfig_ports = ports;
    const auto n = measure(tasks, platform);
    port_table.add_row({std::to_string(ports),
                        "+" + fmt_pct(n.on_demand_pct, 1),
                        "+" + fmt_pct(n.prefetch_pct, 1)});
  }
  port_table.print(std::cout);
  std::cout << "\nExtra ports barely help the prefetched schedules: on these "
               "graphs a single\nserialised port is already hidden behind "
               "computation — the paper's premise.\n";
  return 0;
}

#pragma once

/// \file hybrid.hpp
/// The run-time phase of the hybrid heuristic (paper Section 6).
///
/// Given the design-time HybridSchedule and the set of configurations the
/// reuse module found resident, the run-time phase only has to:
///  1. run the *initialization phase*: load the critical subtasks that are
///     not resident, in the pre-decided weight order, before the stored
///     schedule starts;
///  2. *cancel* the stored loads of non-critical subtasks that turn out to
///     be resident ("it is an unnecessary waste of energy to load them
///     again"), leaving the rest of the schedule untouched.
/// Everything else was fixed at design time, which is why the run-time
/// overhead of the hybrid approach is negligible.

#include <vector>

#include "platform/platform.hpp"
#include "prefetch/critical_subtasks.hpp"
#include "prefetch/evaluator.hpp"

namespace drhw {

/// Outcome of executing one task instance under the hybrid heuristic.
struct HybridRunOutcome {
  /// Critical subtasks actually loaded up front (CS minus resident ones).
  std::vector<SubtaskId> init_loads;
  /// Completion time of each init load (aligned with init_loads, relative
  /// to the instance start). The loads dispatch in the pre-decided order
  /// onto the earliest-free reconfiguration port, so with one port these
  /// are the running sums of the load latencies; with reconfig_ports > 1
  /// the phase overlaps and the ends interleave.
  std::vector<time_us> init_load_ends;
  /// Makespan of the initialization phase: the last init_load_ends entry's
  /// maximum (sum of latencies with one port, shorter with several).
  time_us init_duration = 0;
  /// Evaluation of the stored design-time schedule (times relative to the
  /// end of the initialization phase).
  EvalResult eval;
  /// init_duration + eval.makespan.
  time_us total_makespan = 0;
  /// Stored loads skipped because the configuration was resident.
  int cancelled_loads = 0;
};

/// The *decision-only* part of the run-time phase — what actually executes
/// inside the scheduler's time slot on the embedded processor: pick the
/// initialization loads (CS minus resident) and cancel resident stored
/// loads. O(N) with no timing computation; this is why the hybrid approach
/// "is not generating any run-time overhead" (Section 6).
struct HybridDecision {
  std::vector<SubtaskId> init_loads;
  std::vector<SubtaskId> load_order;  ///< stored order minus cancellations
  int cancelled_loads = 0;
};

HybridDecision hybrid_decide(const HybridSchedule& design,
                             const std::vector<bool>& resident);

/// Times an initialization phase: dispatches `loads` in the given order
/// onto the earliest-free of the platform's reconfiguration ports — back to
/// back on a single-port platform, overlapped on a multi-port one. Appends
/// each load's completion instant to `ends` (aligned with `loads`) and
/// returns the phase makespan. This mirrors the online kernel exactly (its
/// init loads are exempt from the unit-order gate, so every free port takes
/// the next one), which is what keeps the sequential rigs' spans equal to
/// the kernel's at arrival rate -> 0 for reconfig_ports > 1 — the one
/// shared implementation for hybrid_runtime() and the policy layer's
/// evaluate_instance_plan().
time_us dispatch_init_loads(const SubtaskGraph& graph,
                            const PlatformConfig& platform,
                            const std::vector<SubtaskId>& loads,
                            std::vector<time_us>& ends);

/// Executes the run-time phase and evaluates the resulting schedule.
/// `resident[s]` marks subtasks whose configuration is already on their
/// bound tile (from the reuse module or a preceding inter-task prefetch).
HybridRunOutcome hybrid_runtime(const SubtaskGraph& graph,
                                const Placement& placement,
                                const PlatformConfig& platform,
                                const HybridSchedule& design,
                                const std::vector<bool>& resident);

}  // namespace drhw

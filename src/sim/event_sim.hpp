#pragma once

/// \file event_sim.hpp
/// Event-driven *online* multi-task simulation kernel.
///
/// The Section 7 rig (system_sim.hpp) executes task instances strictly one
/// after another, so the reconfiguration port is never contended between
/// concurrently-live tasks. This kernel opens that regime: task instances
/// arrive from a stochastic process, queue for admission onto the shared
/// physical tile pool (FIFO, head-of-line), and — once live — compete for
/// the platform's reconfiguration port(s) with every other live instance.
///
/// Model:
///  * One global event queue (task arrival, load start/complete, subtask
///    execution complete, instance retire) drives absolute simulated time.
///  * Admission: tile-pool ownership lives in the pool layer
///    (pool/tile_pool.hpp). Arrived instances queue there and a pluggable
///    AdmissionPolicy decides who goes next (FIFO head-of-line by default,
///    bit-identical to PR 2; bounded backfill and windowed best-fit
///    reordering optional). Binding onto the offered tiles goes through
///    the existing ConfigStore / bind_tiles reuse machinery, so
///    configurations left behind by retired instances are reused across
///    live instances. With contiguous allocation on, the pool can also run
///    an online defragmentation pass: idle resident configurations of live
///    instances are relocated through the port (at real reconfiguration
///    latency) to open contiguous room for a fragmentation-blocked head.
///  * The reconfiguration ports are an explicit shared resource (a PortSet,
///    sim/port_set.hpp) serving one load at a time per port; every ready
///    load — a live instance's own load, a hybrid initialization load, a
///    backlog prefetch, a defragmentation migration — dispatches onto the
///    earliest-free port (lowest index on ties), and on multi-port
///    platforms each spare port may carry its own defrag migration
///    concurrently. Arbitration between live instances is either fifo
///    (oldest admitted instance first) or priority (highest ALAP-weight
///    load first). Within one instance the load order follows the
///    InstancePlan its PrefetchPolicy produced (policy/prefetch_policy.hpp),
///    exactly as in the single-instance evaluator: on-demand, priority, or
///    explicit/stored order with head-of-line semantics.
///  * The hybrid's initialization-phase loads become ordinary port requests
///    — they can be delayed by a competing instance's in-flight load, and
///    the instance's stored schedule begins only when they all completed.
///  * Inter-task prefetch (runtime_intertask, hybrid): when no live
///    instance has a serviceable load, the port prefetches critical
///    configurations for *queued* (arrived, not yet admitted) instances
///    onto free tiles, reserving the target tile until the load completes.
///
/// Determinism: the instance stream and every arrival gap are drawn up
/// front from seeded generators, so a run is bit-identical across repeats
/// and across campaign-runner thread counts. At arrival rate -> 0 (no two
/// instances ever live together, single port) the per-instance makespans
/// reduce exactly to the sequential simulator's spans on the same sampler
/// stream — see tests/test_event_sim.cpp.
///
/// ISPs default to per-instance (each instance brings its own ISP
/// context, the PR 2/3 model). With OnlineSimOptions::shared_isps the
/// platform's `isps` processors become a shared contended resource like
/// the port: a second PortSet with its own fifo/priority discipline and
/// busy accounting serialises ISP executions across live instances.
///
/// Real-time mode (OnlineSimOptions::deadline_scale > 0): every instance
/// carries an absolute deadline (arrival + relative deadline, the latter
/// taken from the preparation's RtAttributes or derived as
/// deadline_scale x ideal makespan) and a criticality level; the report
/// gains miss/lateness/tardiness metrics. Deadline-aware policies (edf,
/// llf, edf_hybrid — policy/deadline_policies.cpp) reorder *admission* by
/// urgency through the PrefetchPolicy::admission_urgency() hook. With
/// `preempt` on, a high-criticality arrival that cannot be admitted may
/// checkpoint an idle low-criticality live instance: its resident
/// configurations are written off-chip through the reconfiguration port
/// (TilePoolManager::begin_checkpoint / finish_checkpoint, the migration
/// lifecycle with the ConfigStore as destination), its tiles are freed
/// with the configurations left cached, and the victim re-enters the
/// backlog — on re-admission its loads degrade to cached reuse hits.

#include <cstdint>
#include <string>
#include <vector>

#include "pool/tile_pool.hpp"
#include "sim/event_queue.hpp"
#include "sim/port_set.hpp"
#include "sim/system_sim.hpp"
#include "util/perf_stats.hpp"

namespace drhw {

class TraceSink;  // sim/trace_hook.hpp — structured event-trace observer

/// Stochastic arrival process of the online workload. One "arrival" is one
/// task instance of the flattened sampler stream.
struct ArrivalProcess {
  enum class Kind {
    /// Independent exponential inter-arrival gaps (mean rate `rate_per_s`).
    poisson,
    /// Bursts of `burst_size` instances spaced `intra_burst_gap` apart;
    /// exponential gaps between burst starts (mean `rate_per_s` bursts/s).
    bursty,
    /// Exactly one instance outstanding: the next instance arrives
    /// `think_time` after the previous one retires (saturation probe).
    closed_loop,
    /// Strictly periodic: one instance every `period_us` (derived from
    /// rate_per_s when period_us is 0). The real-time task model's
    /// canonical arrival law.
    periodic,
    /// Sporadic: a minimum inter-arrival gap of `period_us` plus an
    /// exponential slack drawn at mean 1/rate_per_s — the classic
    /// min-gap sporadic model.
    sporadic,
  };
  Kind kind = Kind::poisson;
  double rate_per_s = 20.0;
  int burst_size = 4;
  time_us intra_burst_gap = 0;
  time_us think_time = ms(1);
  /// Period (periodic) or minimum inter-arrival gap (sporadic). 0 derives
  /// it from rate_per_s (period = 1e6 / rate_per_s).
  time_us period_us = 0;

  /// Throws std::invalid_argument when the description is unusable.
  void validate() const;
};

const char* to_string(ArrivalProcess::Kind kind);
ArrivalProcess::Kind arrival_kind_from_string(const std::string& text);
/// Every accepted --arrivals spelling, in declaration order (CLI
/// diagnostics: the "registered arrival kinds" list).
std::vector<std::string> arrival_kind_names();

/// Arbitration between live instances at the shared reconfiguration port.
enum class PortDiscipline {
  fifo,      ///< oldest admitted instance with a serviceable load first
  priority,  ///< highest ALAP-weight serviceable load first
};

const char* to_string(PortDiscipline discipline);
PortDiscipline port_discipline_from_string(const std::string& text);

// The Section 4 scheduler-cost constants and paper_scheduler_cost() moved
// to policy/prefetch_policy.hpp — the per-policy cost is a policy hook now.

struct OnlineSimOptions {
  PlatformConfig platform;
  /// The prefetch scheduling policy, by registered name + parameters
  /// (policy/registry.hpp). Policy-specific knobs — e.g. the hybrid's
  /// inter-task toggle or its beyond-critical tail prefetch — are policy
  /// parameters: PolicySpec("hybrid").with("intertask", "0").
  PolicySpec policy = PolicySpec("hybrid");
  ReplacementPolicy replacement = ReplacementPolicy::lru;
  ArrivalProcess arrivals;
  PortDiscipline port_discipline = PortDiscipline::fifo;
  /// Tile-pool admission/defragmentation knobs (pool/tile_pool.hpp).
  /// Defaults reproduce PR 2 bit-identically.
  PoolOptions pool;
  /// Per-admission run-time scheduling decision cost, charged on the
  /// simulated timeline: an admitted instance's loads and executions
  /// cannot start until `admit + scheduler_cost`. 0 (default) keeps
  /// scheduling free so existing golden numbers hold; see
  /// paper_scheduler_cost() for the Section 4 measurements.
  time_us scheduler_cost = 0;
  /// Model the platform's ISPs as one shared contended pool (PortSet of
  /// `platform.isps` servers) instead of per-instance contexts. Off by
  /// default: the per-instance model reproduces PR 3 bit-identically.
  bool shared_isps = false;
  /// Arbitration between waiting ISP executions when shared_isps is on:
  /// fifo (request order) or priority (highest ALAP weight first).
  PortDiscipline isp_discipline = PortDiscipline::fifo;
  /// How many queued instances the backlog prefetch may serve.
  int intertask_lookahead = 1;
  /// Real-time task model. 0 (default) = deadlines off: no per-instance
  /// deadline state, no miss accounting, behaviour bit-identical to the
  /// best-effort kernel. > 0: an instance arriving at t has absolute
  /// deadline t + relative deadline, where the relative deadline is the
  /// preparation's RtAttributes::relative_deadline_us when set and
  /// deadline_scale x the instance's ideal makespan otherwise.
  double deadline_scale = 0.0;
  /// Fraction of instances drawn as high-criticality (seeded, per job;
  /// a preparation's RtAttributes::criticality > 0 forces high). Only
  /// read when deadline_scale > 0.
  double high_criticality_fraction = 0.25;
  /// Preemptive checkpointing (requires deadline_scale > 0): a queued
  /// high-criticality arrival may checkpoint an idle low-criticality live
  /// instance's resident configurations off-chip and take its tiles; the
  /// victim re-enters the backlog and re-admits with cached configs. Off
  /// by default.
  bool preempt = false;
  /// Global event-queue backend (sim/event_queue.hpp). The calendar queue
  /// is the production default — O(1) expected per event, with the
  /// arrival stream injected lazily in sorted order so the queue holds
  /// only the live working set. The heap backend reproduces the PR 2..5
  /// binary-heap kernel (arrivals eagerly pre-pushed) for differential
  /// testing and as the throughput-bench baseline. Both backends pop in
  /// the same deterministic order, so every report is bit-identical
  /// between them (asserted by tests/test_event_sim.cpp).
  QueueBackend queue_backend = QueueBackend::calendar;
  /// Collect per-instance admit -> retire spans into OnlineReport::spans
  /// (equivalence tests). Off for long-horizon runs — the streaming
  /// quantile sketch keeps reporting response percentiles regardless.
  bool record_spans = true;
  /// Structured event-trace observer (sim/trace_hook.hpp). Null (default)
  /// = tracing off: one null check per accounting site, reports
  /// bit-identical to an untraced run. The trace subsystem (src/trace/)
  /// records the stream to JSONL/binary and can replay it into a
  /// bit-identical OnlineReport.
  TraceSink* trace = nullptr;
  std::uint64_t seed = 1;
  /// Sampler batches to draw (the flattened instances of these batches form
  /// the arrival stream) — same workload volume as a sequential run with
  /// the same iteration count.
  int iterations = 1000;
};

/// Aggregate results of one online simulation.
struct OnlineReport {
  /// The sequential simulator's metrics, identically defined (overhead is
  /// measured on per-instance spans, i.e. excludes queueing time).
  SimReport sim;
  /// Completion time of the last instance (simulated time).
  time_us horizon = 0;
  double mean_response_ms = 0.0;  ///< retire - arrival, mean over instances
  double max_response_ms = 0.0;
  double mean_queueing_ms = 0.0;  ///< admission - arrival (tile wait)
  double max_queueing_ms = 0.0;
  /// Total port busy time normalised by the port count:
  /// 100 * total_busy / (ports * horizon). Always <= 100; the
  /// un-normalised busy/horizon ratio of a saturated multi-port platform
  /// would exceed 100%.
  double port_utilisation_pct = 0.0;
  /// Per-port busy time over the same busy horizon as the total (the
  /// horizon extended to the last port-free instant), index = port id
  /// (size = reconfig_ports). Sums to port_utilisation_pct * ports by
  /// construction (asserted).
  std::vector<double> port_utilisation_per_port_pct;
  /// Total ISP execution time / (isps * horizon). A true utilisation
  /// (<= 100) when shared_isps is on; with per-instance ISPs it is the
  /// *offered* ISP load against the platform's nominal capacity and may
  /// exceed 100%.
  double isp_utilisation_pct = 0.0;
  /// Highest number of defrag migrations ever in flight at once (bounded
  /// by the port count).
  long peak_concurrent_migrations = 0;
  /// Streaming response-time percentiles (P² sketch — exact up to five
  /// instances, tight estimates beyond; no span recording needed).
  double response_p50_ms = 0.0;
  double response_p95_ms = 0.0;
  double response_p99_ms = 0.0;
  /// Time-weighted mean external fragmentation of the tile pool,
  /// 100 * (1 - largest free block / free tiles) integrated over the run.
  double mean_frag_pct = 0.0;
  /// Admissions that overtook an older queued instance (backfill/reorder).
  long queue_skips = 0;
  /// Defragmentation relocations (port migrations + free remaps).
  long defrag_moves = 0;
  /// Real-time metrics (all zero unless OnlineSimOptions::deadline_scale
  /// > 0). An instance misses when it retires strictly after its absolute
  /// deadline; lateness = retire - deadline (negative when early),
  /// tardiness = max(lateness, 0).
  long deadline_jobs = 0;       ///< instances that carried a deadline
  long deadline_misses = 0;
  long high_crit_jobs = 0;      ///< high-criticality instances
  long high_crit_misses = 0;
  double deadline_miss_pct = 0.0;   ///< 100 * misses / deadline_jobs
  double high_crit_miss_pct = 0.0;  ///< 100 * misses / high_crit_jobs
  double mean_lateness_ms = 0.0;    ///< mean signed lateness
  double max_tardiness_ms = 0.0;    ///< worst positive lateness
  /// Preemptive checkpoints performed (victims evicted to the backlog).
  long preemptions = 0;
  /// Per-instance admit -> retire spans in arrival order (equivalence
  /// tests; size == sim.instances; empty when
  /// OnlineSimOptions::record_spans is off).
  std::vector<time_us> spans;
  /// Kernel performance counters (util/perf_stats.hpp): deterministic
  /// event/queue/allocation counts plus wall-clock phase timers. Campaign
  /// reports expose only the deterministic subset; the phase timers are
  /// for OnlineReport consumers (`drhw_sched online --perf`).
  PerfCounters perf;
};

/// Runs the online simulation. The sampler (and everything its instances
/// point to) must outlive the call.
OnlineReport run_online_simulation(const OnlineSimOptions& options,
                                   const IterationSampler& sampler);

}  // namespace drhw
